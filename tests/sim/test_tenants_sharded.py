"""Sharded fleet simulation: partitioning, parallel identity, caching.

The contract under test (docs/api_tour.md §16): a fleet splits into
deterministic shards — each an independent subfleet — and the merged
``FleetResult.to_dict()`` is byte-identical whether shards run serially
(``workers=0``) or across a process pool (``workers>0``), at any shard
count, from any process, with traces generated inline or mmap-served
by a :class:`TraceStore`.
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np
import pytest

from repro.sim.runner import ResultStore
from repro.sim.tenants import (
    TenantFleet,
    prepare_fleet_traces,
    shard_assignments,
    simulate_fleet,
)
from repro.sim.trace_store import TraceStore


def fleet_of(size=24, references=1500, seed=11, **overrides):
    defaults = dict(
        size=size,
        workloads=("gups", "omnetpp"),
        scenarios=("medium", "high"),
        references=references,
        seed=seed,
        mapping_variants=2,
    )
    defaults.update(overrides)
    return TenantFleet(**defaults)


def payload_bytes(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


class TestShardAssignments:
    def test_deterministic_and_stable(self):
        fleet = fleet_of()
        a = shard_assignments(fleet, 4)
        b = shard_assignments(fleet, 4)
        np.testing.assert_array_equal(a, b)
        assert a.dtype == np.int64
        assert a.shape == (fleet.size,)
        assert a.min() >= 0 and a.max() < 4

    def test_single_shard_collapses_to_zero(self):
        fleet = fleet_of(size=8)
        assert shard_assignments(fleet, 1).tolist() == [0] * 8

    def test_partition_is_reasonably_balanced(self):
        fleet = fleet_of(size=4000, references=100)
        counts = np.bincount(shard_assignments(fleet, 8), minlength=8)
        assert counts.sum() == 4000
        # splitmix64 is uniform; 8 bins of 500 expected, allow wide slack.
        assert counts.min() > 300 and counts.max() < 700

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError):
            shard_assignments(fleet_of(size=4), 0)

    def test_trace_variants_bounds_distinct_traces(self):
        fleet = fleet_of(size=200, references=100, trace_variants=3)
        distinct = fleet.distinct_traces()
        assert 0 < len(distinct) <= len(fleet.workloads) * 3
        # Unbounded sampling: ~one distinct seed per tenant.
        unbounded = fleet_of(size=200, references=100).distinct_traces()
        assert len(unbounded) > len(distinct)

    def test_trace_variants_zero_keeps_legacy_sampling(self):
        """trace_variants=0 must not perturb the frozen draw order."""
        base = fleet_of(size=50, references=100)
        explicit = fleet_of(size=50, references=100, trace_variants=0)
        for a, b in zip(base.tenants(), explicit.tenants()):
            assert a == b


class TestShardedIdentity:
    @pytest.mark.parametrize("shards", [1, 2, 4, 7])
    def test_serial_vs_parallel_byte_identity(self, shards):
        """The acceptance bar: workers=0 and workers=N merge to the
        same bytes at every shard count."""
        fleet = fleet_of()
        serial = simulate_fleet(fleet, scheme="anchor-dyn",
                                quantum=400, active_pool=4,
                                shards=shards, workers=0)
        pooled = simulate_fleet(fleet, scheme="anchor-dyn",
                                quantum=400, active_pool=4,
                                shards=shards, workers=3)
        assert payload_bytes(serial) == payload_bytes(pooled)
        assert serial.shards == shards
        assert serial.executed == fleet.size * fleet.references

    def test_single_shard_serial_is_legacy_path(self):
        """shards=1/workers=0 must reproduce the pre-sharding scheduler
        exactly: one subfleet holding every tenant in fleet order."""
        fleet = fleet_of(size=10)
        legacy = simulate_fleet(fleet, scheme="base", quantum=500,
                                active_pool=4)
        sharded = simulate_fleet(fleet, scheme="base", quantum=500,
                                 active_pool=4, shards=1, workers=2)
        assert payload_bytes(legacy) == payload_bytes(sharded)

    def test_more_shards_than_tenants(self):
        """Empty shards contribute nothing and break nothing."""
        fleet = fleet_of(size=3, references=400)
        result = simulate_fleet(fleet, scheme="base", quantum=200,
                                active_pool=2, shards=16, workers=2)
        assert result.executed == 3 * 400
        assert result.per_tenant is not None
        assert [row["name"] for row in result.per_tenant] == [
            "t000000", "t000001", "t000002"
        ]

    def test_trace_store_path_matches_generated(self, tmp_path):
        """mmap-served traces must be invisible to the result bytes."""
        fleet = fleet_of(trace_variants=2)
        store = TraceStore(tmp_path / "traces")
        generated = prepare_fleet_traces(fleet, store)
        assert generated == len(fleet.distinct_traces())
        inline = simulate_fleet(fleet, scheme="anchor-dyn", quantum=400,
                                active_pool=4, shards=3, workers=0)
        mmapped = simulate_fleet(fleet, scheme="anchor-dyn", quantum=400,
                                 active_pool=4, shards=3, workers=2,
                                 trace_store=store)
        assert payload_bytes(inline) == payload_bytes(mmapped)
        # Every trace was served from the store, none regenerated.
        assert store.generation_count() == generated

    def test_storms_run_per_shard(self):
        fleet = fleet_of(size=12)
        serial = simulate_fleet(fleet, scheme="base", quantum=300,
                                active_pool=3, storm_every=2,
                                storm_quantum=50, shards=3, workers=0)
        pooled = simulate_fleet(fleet, scheme="base", quantum=300,
                                active_pool=3, storm_every=2,
                                storm_quantum=50, shards=3, workers=2)
        assert serial.storm_rounds > 0
        assert payload_bytes(serial) == payload_bytes(pooled)

    def test_validation(self):
        fleet = fleet_of(size=4)
        with pytest.raises(ValueError):
            simulate_fleet(fleet, shards=0)
        with pytest.raises(ValueError):
            simulate_fleet(fleet, workers=-1)


class TestShardResultCache:
    def test_outcomes_persist_and_short_circuit(self, tmp_path):
        fleet = fleet_of(size=12)
        store = ResultStore(tmp_path / "shards")
        first = simulate_fleet(fleet, scheme="base", quantum=400,
                               active_pool=4, shards=4, workers=0,
                               result_store=store)
        assert len(list(store.root.glob("*/*.json"))) == 4
        # A warm rerun must not simulate anything: poison the shard
        # runner and rely purely on the cache.
        import repro.sim.tenants as tenants_mod

        def boom(task):
            raise AssertionError("shard recomputed despite warm cache")

        original = tenants_mod._run_shard
        tenants_mod._run_shard = boom
        try:
            warm = simulate_fleet(fleet, scheme="base", quantum=400,
                                  active_pool=4, shards=4, workers=0,
                                  result_store=store)
        finally:
            tenants_mod._run_shard = original
        assert payload_bytes(first) == payload_bytes(warm)

    def test_cache_key_separates_configs(self, tmp_path):
        fleet = fleet_of(size=8)
        store = ResultStore(tmp_path / "shards")
        simulate_fleet(fleet, scheme="base", quantum=400, active_pool=4,
                       shards=2, workers=0, result_store=store)
        simulate_fleet(fleet, scheme="thp", quantum=400, active_pool=4,
                       shards=2, workers=0, result_store=store)
        assert len(list(store.root.glob("*/*.json"))) == 4

    def test_corrupt_cache_entry_recomputes(self, tmp_path):
        fleet = fleet_of(size=8)
        store = ResultStore(tmp_path / "shards")
        first = simulate_fleet(fleet, scheme="base", quantum=400,
                               active_pool=4, shards=2, workers=0,
                               result_store=store)
        for path in store.root.glob("*/*.json"):
            path.write_text("{not json", encoding="utf-8")
        again = simulate_fleet(fleet, scheme="base", quantum=400,
                               active_pool=4, shards=2, workers=0,
                               result_store=store)
        assert payload_bytes(first) == payload_bytes(again)


class TestProfilePass:
    def test_profile_dir_gets_one_dump_per_shard(self, tmp_path):
        fleet = fleet_of(size=6, references=400)
        simulate_fleet(fleet, scheme="base", quantum=200, active_pool=2,
                       shards=3, workers=0,
                       profile_dir=str(tmp_path / "profiles"))
        dumps = sorted(p.name for p in (tmp_path / "profiles").iterdir())
        assert dumps == ["shard_0000.prof", "shard_0001.prof",
                         "shard_0002.prof"]


#: sha256 over ``payload_bytes`` of the 1k gate recipe below, pinned
#: when the sharded engine landed and re-verified by the
#: prototype-clone rewrite.  Any behavioural drift in the fleet path —
#: cloning, dispatch amortisation, stats folding, merge order — flips
#: this constant and fails the gate.
FLEET_1K_DIGEST = (
    "2c0f9ae8f0627da1147fa8d7ca23cbe18bd8f32b9019c4e611120937dd15a13a"
)


@pytest.mark.skipif(
    not os.environ.get("ANCHOR_TLB_FLEET_1K"),
    reason="CI identity gate; set ANCHOR_TLB_FLEET_1K=1 to run",
)
def test_thousand_tenant_serial_vs_sharded_identity():
    """The gating CI step: a 1k-tenant fleet, serial vs sharded pool,
    byte-identical payloads, pinned across PRs by the digest constant."""
    fleet = TenantFleet(
        size=1000,
        workloads=("gups", "omnetpp", "sphinx3"),
        references=500,
        seed=20170624,
        mapping_variants=2,
        trace_variants=4,
    )
    serial = simulate_fleet(fleet, scheme="anchor-dyn", quantum=250,
                            active_pool=8, shards=8, workers=0)
    pooled = simulate_fleet(fleet, scheme="anchor-dyn", quantum=250,
                            active_pool=8, shards=8, workers=4)
    serial_payload = payload_bytes(serial)
    assert serial_payload == payload_bytes(pooled)
    assert hashlib.sha256(
        serial_payload.encode("utf-8")).hexdigest() == FLEET_1K_DIGEST
