"""Validate each workload model's locality class with the analysis toolkit.

DESIGN.md §4 claims the synthetic models reproduce the applications'
page-level locality profiles; these tests pin the *class* of each model
(random-dominated, stream-dominated, pointer-chasing, hot-set) so a
future edit to a pattern cannot silently change a workload's character
and invalidate the figure shapes.
"""

import pytest

from repro.sim.analysis import profile
from repro.sim.workloads import WORKLOAD_ORDER, get_workload

REFERENCES = 6000


@pytest.fixture(scope="module")
def profiles():
    return {
        name: profile(get_workload(name).make_trace(REFERENCES, seed=9))
        for name in WORKLOAD_ORDER
    }


class TestLocalityClasses:
    def test_random_dominated_have_flat_reuse(self, profiles):
        """gups/tigr/canneal: big footprints, little short-range reuse."""
        for name in ("gups", "tigr", "canneal"):
            assert profiles[name].hit_at_l2_reach < 0.45, name

    def test_hot_set_apps_have_strong_reuse(self, profiles):
        """omnetpp/xalancbmk/sphinx3: most references hit a small set."""
        for name in ("omnetpp", "xalancbmk", "sphinx3"):
            assert profiles[name].hit_at_l2_reach > 0.5, name

    def test_stream_apps_touch_pages_in_bursts(self, profiles):
        """Stencil sweeps reuse each page a few times then move on, so
        the L1-reach hit ratio is already high."""
        for name in ("GemsFDTD", "cactusADM", "milc"):
            assert profiles[name].hit_at_l1_reach > 0.3, name

    def test_pointer_chasers_have_high_cold_or_long_reuse(self, profiles):
        for name in ("mcf", "mummer"):
            long_or_cold = 1.0 - profiles[name].hit_at_l2_reach
            assert long_or_cold > 0.4, name

    def test_gups_is_the_extreme(self, profiles):
        worst = min(profiles.values(), key=lambda p: p.hit_at_l2_reach)
        assert worst is profiles["gups"]

    def test_footprint_ordering_preserved(self, profiles):
        assert (profiles["gups"].distinct_pages
                > profiles["mcf"].distinct_pages
                > profiles["omnetpp"].distinct_pages)

    def test_every_workload_exceeds_l2_reach(self, profiles):
        """Footprint >> TLB reach must hold for every app (DESIGN §4) —
        otherwise the baseline would not miss and relative numbers would
        be meaningless."""
        for name in profiles:
            assert get_workload(name).footprint_pages > 4 * 1024, name
        for name, prof in profiles.items():
            assert prof.distinct_pages > 500, name
