"""Golden parity: the batched engine must be bit-identical to scalar.

Every registered scheme is driven over the same trace by both engines;
counters must match exactly, and for the schemes with optimised
``access_block`` overrides the final hardware state (every set's entries
in LRU order) must match too — the batched path is a faster evaluation
of the same machine, not an approximation.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.params import DEFAULT_MACHINE
from repro.schemes.base import TranslationScheme
from repro.schemes.registry import make_scheme, scheme_names
from repro.sim.engine import DEFAULT_EPOCH_REFERENCES, SimulationResult, simulate
from repro.sim.trace import Trace
from repro.vmos.scenarios import build_mapping
from repro.vmos.vma import AllocationSite, layout_vmas

#: schemes with a vectorised access_block (state must also match).
#: Since the universal-engine work this is every registered scheme.
OPTIMIZED = set(scheme_names(include_extras=True))

SCENARIOS = ("demand", "eager", "low")


def parity_vmas():
    return layout_vmas([
        AllocationSite(1024, 1),
        AllocationSite(64, 4),
        AllocationSite(8, 8),
    ])


def mapped_trace(mapping, references, seed):
    """A trace over mapped pages only (no faults — both engines finish)."""
    rng = np.random.default_rng(seed)
    vpns = np.fromiter((vpn for vpn, _ in mapping.items()), dtype=np.int64)
    picks = vpns[rng.integers(0, vpns.size, size=references)]
    return Trace(picks, references * 3, "parity")


def l2_state(scheme):
    l2 = getattr(scheme, "l2", None)
    if l2 is None:
        return None
    array = getattr(l2, "array", l2)
    return array.state() if hasattr(array, "state") else None


def hw_state(scheme):
    """Every piece of stateful hardware a scheme owns, LRU order and all."""
    state = {"l1": scheme.l1.state(), "l2": l2_state(scheme)}
    if hasattr(scheme, "regular"):
        state["regular"] = scheme.regular.state()
    if hasattr(scheme, "clustered"):
        state["clustered"] = scheme.clustered.array.state()
    if hasattr(scheme, "range_tlb"):
        state["range_tlb"] = list(scheme.range_tlb._entries.items())
    if hasattr(scheme, "_prefetched"):
        state["prefetched"] = sorted(scheme._prefetched)
        state["prefetch"] = (scheme.prefetches_issued, scheme.prefetch_hits)
    if scheme.pwc is not None:
        state["pwc"] = scheme.pwc.state()
        state["pwc_counters"] = (scheme.pwc.hits, scheme.pwc.probes)
    return state


def run_engine(scheme_name, mapping, trace, machine, engine, epoch):
    scheme = make_scheme(scheme_name, mapping, machine)
    result = simulate(scheme, trace, epoch_references=epoch, engine=engine)
    return scheme, result


class TestGoldenParity:
    @pytest.mark.parametrize("scheme_name", scheme_names(include_extras=True))
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_scalar_batched_identical(self, scheme_name, scenario, tiny_machine):
        mapping = build_mapping(parity_vmas(), scenario, seed=13)
        trace = mapped_trace(mapping, 6000, seed=17)
        outputs = {}
        for engine in ("scalar", "batched"):
            scheme, result = run_engine(
                scheme_name, mapping, trace, tiny_machine, engine, epoch=2500)
            outputs[engine] = (
                scheme.stats.snapshot(),
                result.epoch_stats,
                hw_state(scheme),
            )
        assert outputs["batched"] == outputs["scalar"]

    @pytest.mark.parametrize("scheme_name", sorted(OPTIMIZED))
    def test_full_machine_parity(self, scheme_name):
        mapping = build_mapping(parity_vmas(), "demand", seed=5)
        trace = mapped_trace(mapping, 20_000, seed=23)
        outputs = {}
        for engine in ("scalar", "batched"):
            scheme, result = run_engine(
                scheme_name, mapping, trace, DEFAULT_MACHINE, engine,
                epoch=8000)
            outputs[engine] = (
                scheme.stats.snapshot(), result.epoch_stats,
                hw_state(scheme))
        assert outputs["batched"] == outputs["scalar"]

    @pytest.mark.parametrize("scheme_name", sorted(OPTIMIZED))
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_pwc_parity(self, scheme_name, scenario, tiny_machine):
        """With page-walk caches on, the batched PWC model must match the
        scalar one access for access — counters and per-level LRU state."""
        machine = dataclasses.replace(tiny_machine, pwc=True)
        mapping = build_mapping(parity_vmas(), scenario, seed=29)
        trace = mapped_trace(mapping, 6000, seed=31)
        outputs = {}
        for engine in ("scalar", "batched"):
            scheme, result = run_engine(
                scheme_name, mapping, trace, machine, engine, epoch=2500)
            assert scheme.pwc is not None
            outputs[engine] = (
                scheme.stats.snapshot(), result.epoch_stats, hw_state(scheme))
        assert outputs["batched"] == outputs["scalar"]
        # PWC runs charge per-step walk cycles, so the walks must have
        # recorded their page-table accesses.
        if outputs["batched"][0]["walks"]:
            assert outputs["batched"][0]["walk_pt_accesses"] > 0

    @pytest.mark.parametrize("scheme_name", sorted(OPTIMIZED))
    def test_no_scalar_fallback_with_pwc(self, scheme_name, tiny_machine,
                                         monkeypatch):
        """Fault-free blocks must stay on the fast path even with the PWC
        enabled — no scheme may silently fall back to the scalar loop."""
        calls = []

        def spy(self, vpns):
            calls.append(self.name)
            for vpn in vpns.tolist():
                self.access(int(vpn))

        monkeypatch.setattr(TranslationScheme, "access_block", spy)
        machine = dataclasses.replace(tiny_machine, pwc=True)
        mapping = build_mapping(parity_vmas(), "demand", seed=37)
        trace = mapped_trace(mapping, 4000, seed=41)
        scheme = make_scheme(scheme_name, mapping, machine)
        simulate(scheme, trace, epoch_references=1000, engine="batched")
        assert calls == []

    @pytest.mark.parametrize("scheme_name", sorted(OPTIMIZED))
    def test_fault_mid_block_parity(self, scheme_name, tiny_machine):
        """An unmapped page mid-block: both engines must raise the page
        fault at the same reference with identical stats and state."""
        from repro.errors import PageFaultError

        mapping = build_mapping(parity_vmas(), "demand", seed=43)
        vpns = np.fromiter((vpn for vpn, _ in mapping.items()), dtype=np.int64)
        unmapped = int(vpns.max()) + 100_000
        rng = np.random.default_rng(47)
        picks = vpns[rng.integers(0, vpns.size, size=900)]
        picks[700] = unmapped  # fault mid-way through an epoch block
        trace = Trace(picks, 2700, "faulty")
        outputs = {}
        for engine in ("scalar", "batched"):
            scheme = make_scheme(scheme_name, mapping, tiny_machine)
            with pytest.raises(PageFaultError):
                simulate(scheme, trace, epoch_references=400, engine=engine)
            outputs[engine] = (scheme.stats.snapshot(), hw_state(scheme))
        assert outputs["batched"] == outputs["scalar"]

    @settings(max_examples=12, deadline=None)
    @given(
        epoch=st.integers(min_value=1, max_value=6001),
        scheme_name=st.sampled_from(sorted(OPTIMIZED)),
    )
    def test_arbitrary_epoch_boundaries(self, epoch, scheme_name):
        """Chunking must be invisible: any epoch size — from one
        reference per block to the whole trace in one block — produces
        the same final counters and hardware state as the scalar run."""
        from repro.params import MachineConfig, TLBGeometry

        tiny_machine = MachineConfig(
            l1_4k=TLBGeometry(8, 2),
            l1_2m=TLBGeometry(4, 2),
            l2=TLBGeometry(32, 4),
        )
        mapping = build_mapping(parity_vmas(), "demand", seed=53)
        trace = mapped_trace(mapping, 3000, seed=59)
        outputs = {}
        for engine, e in (("scalar", 3000), ("batched", epoch)):
            scheme, _ = run_engine(
                scheme_name, mapping, trace, tiny_machine, engine, epoch=e)
            outputs[engine] = (scheme.stats.snapshot(), hw_state(scheme))
        assert outputs["batched"] == outputs["scalar"]

    @pytest.mark.parametrize("scheme_name",
                             [n for n in sorted(OPTIMIZED)
                              if make_scheme(
                                  n,
                                  build_mapping(parity_vmas(), "low", seed=3),
                              ).tag_safe_block])
    def test_tagged_parity(self, scheme_name, tiny_machine):
        """Tag-safe schemes under a nonzero ASID: the batched engine
        must pack the tag into every structure exactly as the scalar
        path does — counters and per-set (tagged) LRU state match."""
        machine = dataclasses.replace(tiny_machine, pwc=True)
        mapping = build_mapping(parity_vmas(), "demand", seed=61)
        trace = mapped_trace(mapping, 6000, seed=67)
        outputs = {}
        for engine in ("scalar", "batched"):
            scheme = make_scheme(scheme_name, mapping, machine)
            scheme.set_asid(5)
            result = simulate(scheme, trace, epoch_references=2500,
                              engine=engine)
            outputs[engine] = (
                scheme.stats.snapshot(), result.epoch_stats, hw_state(scheme))
        assert outputs["batched"] == outputs["scalar"]

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        scheme_name=st.sampled_from(sorted(OPTIMIZED)),
    )
    def test_property_random_traces(self, seed, scheme_name):
        # Small page universe + tiny machine: evictions, residual LRU
        # walks and anchor refills all trigger within a short trace.
        from repro.params import MachineConfig, TLBGeometry

        tiny_machine = MachineConfig(
            l1_4k=TLBGeometry(8, 2),
            l1_2m=TLBGeometry(4, 2),
            l2=TLBGeometry(32, 4),
        )
        mapping = build_mapping(parity_vmas(), "medium", seed=3)
        vpns = np.fromiter(
            (vpn for vpn, _ in mapping.items()), dtype=np.int64)
        rng = np.random.default_rng(seed)
        hot = vpns[: max(8, vpns.size // 64)]
        picks = np.where(
            rng.random(3000) < 0.5,
            hot[rng.integers(0, hot.size, size=3000)],
            vpns[rng.integers(0, vpns.size, size=3000)],
        )
        trace = Trace(picks, 9000, "prop")
        outputs = {}
        for engine in ("scalar", "batched"):
            scheme, _ = run_engine(
                scheme_name, mapping, trace, tiny_machine, engine, epoch=1000)
            outputs[engine] = (scheme.stats.snapshot(), hw_state(scheme))
        assert outputs["batched"] == outputs["scalar"]


class TestEngineAPI:
    def test_unknown_engine_rejected(self, contiguous_mapping, make_trace):
        scheme = make_scheme("base", contiguous_mapping, DEFAULT_MACHINE)
        with pytest.raises(ValueError):
            simulate(scheme, make_trace([0x1000]), engine="vectorised")

    def test_epoch_stats_snapshots(self, contiguous_mapping, make_trace):
        scheme = make_scheme("base", contiguous_mapping, DEFAULT_MACHINE)
        trace = make_trace([0x1000 + (i % 256) for i in range(900)])
        result = simulate(scheme, trace, epoch_references=300)
        assert len(result.epoch_stats) == 3
        assert result.epoch_stats[-1] == scheme.stats.snapshot()
        assert [s["accesses"] for s in result.epoch_stats] == [300, 600, 900]

    def test_default_epoch_size(self):
        assert DEFAULT_EPOCH_REFERENCES == 50_000

    def test_result_round_trip(self, contiguous_mapping, make_trace):
        scheme = make_scheme("base", contiguous_mapping, DEFAULT_MACHINE)
        result = simulate(
            scheme, make_trace([0x1000, 0x1001] * 50), epoch_references=40)
        payload = result.to_dict()
        rebuilt = SimulationResult.from_dict(payload)
        assert rebuilt.to_dict() == payload
        assert rebuilt.stats.snapshot() == scheme.stats.snapshot()
        assert rebuilt.epoch_stats == result.epoch_stats

    def test_stats_round_trip(self, contiguous_mapping, make_trace):
        scheme = make_scheme("base", contiguous_mapping, DEFAULT_MACHINE)
        simulate(scheme, make_trace([0x1000 + i for i in range(80)]))
        payload = scheme.stats.to_dict()
        from repro.sim.stats import TranslationStats

        rebuilt = TranslationStats.from_dict(payload)
        assert rebuilt.snapshot() == scheme.stats.snapshot()
        assert rebuilt.latency.l2_hit == scheme.stats.latency.l2_hit
