"""Tests for the unified SimRequest/SimReply API (repro.sim.api)."""

from __future__ import annotations

import warnings

import pytest

from repro.errors import OrchestrationError
from repro.sim.api import (
    SimReply,
    SimRequest,
    TenancyConfig,
    digest_payload,
    execute_request,
    simulate_request,
)


def request_of(**overrides) -> SimRequest:
    defaults = dict(
        workload="sphinx3", scenario="medium", scheme="base",
        references=500, seed=3,
    )
    defaults.update(overrides)
    return SimRequest(**defaults)


def fleet_request(**overrides) -> SimRequest:
    defaults = dict(
        workload="gups", scenario="medium", scheme="base",
        references=600, seed=5, kind="fleet",
        tenancy=TenancyConfig(tenants=4, quantum=200, active_pool=2),
    )
    defaults.update(overrides)
    return SimRequest(**defaults)


class TestKeyCompatibility:
    """SimRequest keys must be byte-identical to the keys the old
    JobSpec minted, so existing result caches stay valid."""

    def test_default_request_describes_like_jobspec(self):
        description = request_of().describe()
        # The legacy JobSpec hash covered exactly these fields...
        assert set(description) == {
            "format", "kind", "workload", "scenario", "scheme",
            "references", "seed", "epoch_references", "ideal_subsample",
            "machine",
        }
        # ...so new fields must stay out of the hash at their defaults.
        assert "engine" not in description
        assert "tenancy" not in description

    def test_jobspec_alias_mints_identical_keys(self):
        from repro.sim.runner import JobSpec

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = JobSpec(workload="sphinx3", scenario="medium",
                             scheme="base", references=500, seed=3)
        assert legacy.key() == request_of().key()

    def test_non_default_engine_and_tenancy_perturb_key(self):
        base = request_of()
        assert request_of(engine="scalar").key() != base.key()
        assert fleet_request().key() != base.key()

    def test_key_is_stable_across_processes(self):
        """The key is a pure content hash — pin one value so an
        accidental format change cannot slip by unnoticed."""
        assert request_of().key() == digest_payload(request_of().describe())
        assert request_of().key() == request_of().key()

    def test_default_fleet_tenancy_hash_unchanged_by_sharding_fields(self):
        """Pre-sharding fleet caches must stay valid: at their defaults
        the new shards/trace_variants fields stay out of the tenancy
        hash, leaving exactly the PR 6 field set."""
        tenancy = fleet_request().tenancy.describe()
        assert set(tenancy) == {
            "tenants", "policy", "quantum", "active_pool", "storm_every",
            "storm_quantum", "mapping_variants", "asid_bits", "workloads",
            "scenarios",
        }

    def test_shards_and_trace_variants_perturb_key(self):
        base = fleet_request()
        sharded = fleet_request(
            tenancy=TenancyConfig(tenants=4, quantum=200, active_pool=2,
                                  shards=4))
        bounded = fleet_request(
            tenancy=TenancyConfig(tenants=4, quantum=200, active_pool=2,
                                  trace_variants=3))
        assert sharded.key() != base.key()
        assert bounded.key() != base.key()
        assert sharded.key() != bounded.key()

    def test_workers_never_enters_the_key(self):
        """Worker count is an execution knob: a shard's bytes are
        identical under any pool size, so two requests differing only
        in workers must share one cache entry."""
        serial = fleet_request(
            tenancy=TenancyConfig(tenants=4, quantum=200, active_pool=2,
                                  shards=4, workers=0))
        pooled = fleet_request(
            tenancy=TenancyConfig(tenants=4, quantum=200, active_pool=2,
                                  shards=4, workers=8))
        assert serial.key() == pooled.key()
        assert "workers" not in serial.tenancy.describe()


class TestWireForm:
    def test_round_trip(self):
        request = request_of()
        assert SimRequest.from_dict(request.to_dict()) == request

    def test_round_trip_with_tenancy(self):
        request = fleet_request()
        clone = SimRequest.from_dict(request.to_dict())
        assert clone == request
        assert clone.key() == request.key()

    def test_round_trip_preserves_sharding_fields(self):
        """workers rides the wire (the service honours it) even though
        it never enters the hash."""
        request = fleet_request(
            tenancy=TenancyConfig(tenants=4, quantum=200, active_pool=2,
                                  shards=4, trace_variants=3, workers=8))
        clone = SimRequest.from_dict(request.to_dict())
        assert clone == request
        assert clone.tenancy.workers == 8
        assert clone.tenancy.shards == 4
        assert clone.tenancy.trace_variants == 3

    def test_from_dict_accepts_pre_sharding_payloads(self):
        """Wire payloads minted before the sharding fields existed must
        still deserialize (defaults fill in)."""
        data = fleet_request().to_dict()
        for field in ("shards", "trace_variants", "workers"):
            data["tenancy"].pop(field, None)
        clone = SimRequest.from_dict(data)
        assert clone.tenancy.shards == 1
        assert clone.tenancy.trace_variants == 0
        assert clone.tenancy.workers == 0

    def test_round_trip_through_json(self):
        import json

        request = fleet_request(seed=None)
        clone = SimRequest.from_dict(json.loads(json.dumps(request.to_dict())))
        assert clone == request

    def test_reply_round_trip(self):
        reply = SimReply(key="ab" * 32, payload={"stats": {"walks": 3}})
        assert SimReply.from_dict(reply.to_dict()) == reply


class TestDeprecatedShims:
    def test_simulate_warns_and_delegates(self):
        import numpy as np

        from repro.mem.frames import FrameRange
        from repro.schemes.baseline import BaselineScheme
        from repro.sim.engine import run_trace, simulate
        from repro.sim.trace import Trace
        from repro.vmos.mapping import MemoryMapping

        def scheme_and_trace():
            mapping = MemoryMapping()
            mapping.map_run(0, FrameRange(10_000, 64))
            rng = np.random.default_rng(1)
            return (BaselineScheme(mapping),
                    Trace(rng.integers(0, 64, 400), 1200, "t"))

        with pytest.warns(DeprecationWarning, match="run_trace"):
            scheme, trace = scheme_and_trace()
            legacy = simulate(scheme, trace)
        scheme, trace = scheme_and_trace()
        modern = run_trace(scheme, trace)
        assert legacy.stats.snapshot() == modern.stats.snapshot()

    def test_simulate_multiprogrammed_warns(self):
        import numpy as np

        from repro.mem.frames import FrameRange
        from repro.schemes.baseline import BaselineScheme
        from repro.sim.multiprog import ProcessRun, simulate_multiprogrammed
        from repro.sim.trace import Trace
        from repro.vmos.mapping import MemoryMapping

        mapping = MemoryMapping()
        mapping.map_run(0, FrameRange(10_000, 64))
        rng = np.random.default_rng(1)
        run = ProcessRun("a", BaselineScheme(mapping),
                         Trace(rng.integers(0, 64, 400), 1200, "a"))
        with pytest.warns(DeprecationWarning, match="run_timeshared"):
            simulate_multiprogrammed([run], quantum=100)

    def test_jobspec_construction_warns(self):
        from repro.sim.runner import JobSpec

        with pytest.warns(DeprecationWarning, match="SimRequest"):
            JobSpec(workload="gups", scenario="medium", scheme="base",
                    references=100, seed=1)

    def test_execute_job_warns_and_matches_execute_request(self):
        from repro.sim.runner import execute_job

        request = request_of(references=300)
        with pytest.warns(DeprecationWarning, match="execute_request"):
            legacy = execute_job(request)
        assert legacy == execute_request(request)


class TestExecuteRequest:
    def test_simulate_kind(self):
        payload = execute_request(request_of(references=300))
        assert payload["stats"]["accesses"] == 300
        assert payload["scheme"] == "base"

    def test_distances_kind(self):
        payload = execute_request(request_of(kind="distances", scheme="-"))
        assert set(payload) == {"distance"}
        assert payload["distance"] >= 1

    def test_fleet_kind(self):
        payload = execute_request(fleet_request())
        assert payload["tenants"] == 4
        assert payload["executed"] == 4 * 600
        assert payload["policy"] == "tagged"

    def test_fleet_without_tenancy_rejected(self):
        with pytest.raises(OrchestrationError, match="tenancy"):
            execute_request(request_of(kind="fleet"))

    def test_unknown_kind_rejected(self):
        with pytest.raises(OrchestrationError, match="kind"):
            execute_request(request_of(kind="bogus"))

    def test_simulate_request_wraps_reply(self):
        request = request_of(references=300)
        reply = simulate_request(request)
        assert reply.key == request.key()
        assert reply.payload == execute_request(request)

    def test_engines_agree(self):
        batched = execute_request(request_of(references=400))
        scalar = execute_request(request_of(references=400, engine="scalar"))
        assert batched["stats"] == scalar["stats"]


class TestNoInternalShimCallers:
    """The deprecated entry points must have no callers left inside the
    package — exercising the public surface emits no DeprecationWarning."""

    def test_matrix_runner_path_is_warning_free(self):
        from repro.experiments.common import ExperimentConfig, MatrixRunner

        runner = MatrixRunner(ExperimentConfig(references=400, seed=1))
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            runner.prefetch(["gups"], ["medium"], ["base"])
            result = runner.run("gups", "medium", "base")
        assert result.stats.accesses == 400

    def test_system_path_is_warning_free(self):
        from repro.system import System

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            system = System(seed=2, pressure="pristine",
                            total_frames=1 << 18)
            a = system.launch("sphinx3")
            b = system.launch("omnetpp")
            system.run(a, scheme="base", references=1_000)
            system.run_together([a, b], scheme="base", references=1_000,
                                quantum=400)
