"""Tests for fleet-scale multi-tenant scheduling (repro.sim.tenants)."""

import os

import numpy as np
import pytest

from repro.hw.tlb import TAG_BITS, TAG_SHIFT
from repro.mem.frames import FrameRange
from repro.schemes.anchor_scheme import AnchorScheme
from repro.schemes.baseline import BaselineScheme
from repro.schemes.registry import make_scheme
from repro.sim.multiprog import ProcessRun
from repro.sim.tenants import (
    ScheduleCounters,
    TenantFleet,
    TenantRun,
    _AsidAllocator,
    _Cursor,
    run_schedule,
    run_timeshared,
    simulate_fleet,
)
from repro.sim.trace import Trace
from repro.util.proc import peak_rss_bytes
from repro.vmos.distance import DistanceRegisterFile
from repro.vmos.mapping import MemoryMapping


def make_mapping(pages=256, base=10_000):
    mapping = MemoryMapping()
    mapping.map_run(0, FrameRange(base, pages))
    return mapping


def make_process(name, pages=256, length=2000, seed=0,
                 scheme_cls=BaselineScheme, **kwargs):
    rng = np.random.default_rng(seed)
    trace = Trace(rng.integers(0, pages, length), length * 3, name)
    return ProcessRun(name, scheme_cls(make_mapping(pages), **kwargs), trace)


def make_member(name, pages=256, length=2000, seed=0,
                scheme_cls=BaselineScheme, **kwargs):
    rng = np.random.default_rng(seed)
    vpns = rng.integers(0, pages, length).astype(np.int64)
    return TenantRun(name=name, scheme=scheme_cls(make_mapping(pages), **kwargs),
                     cursor=_Cursor(iter([vpns])))


class TestCursor:
    def test_serves_across_chunks(self):
        chunks = iter([np.arange(3, dtype=np.int64),
                       np.arange(3, 7, dtype=np.int64)])
        cursor = _Cursor(chunks)
        assert cursor.take(5).tolist() == [0, 1, 2, 3, 4]
        assert cursor.take(5).tolist() == [5, 6]
        assert cursor.take(5).shape[0] == 0

    def test_exact_boundary(self):
        cursor = _Cursor(iter([np.arange(4, dtype=np.int64)]))
        assert cursor.take(4).shape[0] == 4
        assert cursor.take(1).shape[0] == 0


class TestDriftRegression:
    """The legacy scheduler let a process that exhausted exactly on a
    quantum boundary run one more *empty* slice, charging a switch (and
    a flush) and silently donating the round's remainder."""

    def test_exact_boundary_exhaustion_charges_no_switch(self):
        # a = exactly 2 quanta, b = exactly 4 quanta.  a's third slice
        # is empty and must not be scheduled at all.
        a = make_member("a", length=1000, seed=1)
        b = make_member("b", length=2000, seed=2)
        counters = ScheduleCounters()
        run_schedule([a, b], quantum=500, policy="flush", counters=counters)
        # r1: a (no prev), b (+1); r2: a (+1), b (+1); r3+: b alone.
        assert counters.switches == 3
        assert counters.flushes == counters.switches
        assert a.executed == 1000 and b.executed == 2000
        assert a.slices == 2 and b.slices == 4

    def test_short_slice_retires_after_running(self):
        a = make_member("a", length=750, seed=1)
        b = make_member("b", length=2000, seed=2)
        counters = ScheduleCounters()
        run_schedule([a, b], quantum=500, policy="flush", counters=counters)
        assert a.executed == 750 and a.slices == 2
        assert counters.switches == 3

    def test_empty_drop_does_not_steal_previous(self):
        """Dropping an exhausted tenant must leave `previous` on the
        tenant that actually ran last, so the next slice of the same
        tenant is switch-free."""
        a = make_member("a", length=500, seed=1)
        b = make_member("b", length=1500, seed=2)
        counters = ScheduleCounters()
        last = run_schedule([a, b], quantum=500, policy="flush",
                            counters=counters)
        assert last is b
        # r1: a, b (+1); r2: a dropped, b continues with NO switch; r3: b.
        assert counters.switches == 1


class TestRunSchedule:
    def test_validation(self):
        member = make_member("a")
        with pytest.raises(ValueError):
            run_schedule([member], quantum=0)
        with pytest.raises(ValueError):
            run_schedule([member], quantum=10, policy="bogus")
        with pytest.raises(ValueError):
            run_schedule([member], quantum=10, storm_every=2, storm_quantum=0)

    def test_storm_rounds_counted(self):
        members = [make_member("a", seed=1), make_member("b", seed=2)]
        counters = ScheduleCounters()
        run_schedule(members, quantum=400, policy="flush",
                     storm_every=3, storm_quantum=50, counters=counters)
        assert counters.storm_rounds > 0
        assert counters.rounds // 3 == counters.storm_rounds
        assert sum(m.executed for m in members) == 4000

    def test_storms_inflate_switch_count(self):
        def pair():
            return [make_member("a", seed=1), make_member("b", seed=2)]
        calm = ScheduleCounters()
        run_schedule(pair(), quantum=400, policy="flush", counters=calm)
        stormy = ScheduleCounters()
        run_schedule(pair(), quantum=400, policy="flush",
                     storm_every=2, storm_quantum=25, counters=stormy)
        assert stormy.switches > calm.switches


class TestRunTimeshared:
    """run_timeshared() preserves the legacy multiprog contract."""

    def test_legacy_switch_counts(self):
        runs = [make_process("a", seed=1), make_process("b", seed=2)]
        result = run_timeshared(runs, quantum=500)
        assert result.switches == 7
        assert result.flushes == 7
        assert result.stats["a"].accesses == 2000

    def test_slices_and_executed_recorded(self):
        runs = [make_process("a", length=700, seed=1),
                make_process("b", length=2100, seed=2)]
        result = run_timeshared(runs, quantum=400)
        assert result.executed == {"a": 700, "b": 2100}
        assert result.slices["a"] == 2
        assert runs[0].position == 700

    def test_validation_matches_legacy(self):
        with pytest.raises(ValueError):
            run_timeshared([], quantum=10)
        with pytest.raises(ValueError):
            run_timeshared([make_process("a")], quantum=0)
        with pytest.raises(ValueError):
            run_timeshared([make_process("a"), make_process("a")], quantum=10)


class TestTaggedDifferential:
    """ISSUE acceptance: a 1-tenant tagged run is bit-identical to the
    untagged engine — the ASID machinery must add zero perturbation."""

    @pytest.mark.parametrize(
        "scheme_name", ["base", "thp", "anchor-dyn", "rmm", "prefetch"])
    def test_tagged_equals_untagged(self, scheme_name):
        rng = np.random.default_rng(3)
        vpns = rng.integers(0, 1024, 6000).astype(np.int64)

        untagged = make_scheme(scheme_name, make_mapping(1024))
        tagged = make_scheme(scheme_name, make_mapping(1024))
        tagged.set_asid(7)
        for scheme in (untagged, tagged):
            scheme.sync_mapping()
            for start in range(0, 6000, 1500):
                scheme.access_block(vpns[start:start + 1500])
            scheme.stats.check_conservation()
        assert tagged.stats.snapshot() == untagged.stats.snapshot()

    def test_one_tenant_schedule_matches_plain_engine(self):
        """Scheduling a single tenant under the tagged policy (slices,
        register file, ASID and all) reproduces the plain single-process
        run counter for counter."""
        rng = np.random.default_rng(5)
        vpns = rng.integers(0, 256, 4000).astype(np.int64)

        plain = BaselineScheme(make_mapping())
        plain.sync_mapping()
        plain.access_block(vpns)

        member = TenantRun(name="solo", scheme=BaselineScheme(make_mapping()),
                           cursor=_Cursor(iter([vpns])), asid=3)
        run_schedule([member], quantum=700, policy="tagged",
                     registers=DistanceRegisterFile())
        assert member.scheme.stats.snapshot() == plain.stats.snapshot()

    def test_tag_does_not_change_set_indexing(self):
        """Tags live above bit TAG_SHIFT, outside the set-index bits."""
        assert TAG_SHIFT >= 46
        assert TAG_BITS >= 8

    def test_unsafe_scheme_rejects_asid(self, medium_mapping):
        scheme = make_scheme("anchor-region", medium_mapping)
        assert not scheme.tag_safe_block
        with pytest.raises(ValueError):
            scheme.set_asid(1)

    @pytest.mark.parametrize(
        "name", ["cluster", "cluster2mb", "colt", "rmm", "prefetch"])
    def test_coalescing_schemes_accept_asid(self, medium_mapping, name):
        """The HW-coalescing schemes' block fast paths are tag-aware:
        ``set_asid`` must tag every array the fast path touches."""
        scheme = make_scheme(name, medium_mapping)
        assert scheme.tag_safe_block
        scheme.set_asid(3)
        assert scheme.l1.small.tag == 3
        if name in ("colt", "rmm", "prefetch"):
            assert scheme.l2.tag == 3
            if name == "rmm":
                assert scheme.range_tlb.tag == 3
        else:
            assert scheme.regular.tag == 3
            assert scheme.clustered.array.tag == 3


class TestTaggedIsolationAndContention:
    def test_tagged_walks_between_flush_and_partitioned(self):
        """Shared tagged TLBs: better than flushing (entries survive),
        worse than ideal partitioning (neighbours contend for ways)."""
        fleet = TenantFleet(size=8, workloads=("gups",),
                            scenarios=("medium",), references=3000, seed=11)
        walks = {
            policy: simulate_fleet(fleet, scheme="base", policy=policy,
                                   quantum=500, active_pool=4).total_walks()
            for policy in ("flush", "partitioned", "tagged")
        }
        assert walks["partitioned"] <= walks["tagged"] <= walks["flush"]
        assert walks["partitioned"] < walks["flush"]

    def test_anchor_distance_saved_and_restored(self):
        fleet = TenantFleet(size=6, workloads=("gups",),
                            scenarios=("low", "max"), references=3000, seed=4)
        result = simulate_fleet(fleet, scheme="anchor-dyn", policy="tagged",
                                quantum=400, active_pool=3)
        assert result.distance_saves > 0
        assert result.distance_restores > 0
        assert len(result.registers) == 6


class TestFleet:
    def test_fleet_sampling_deterministic(self):
        fleet = TenantFleet(size=32, workloads=("gups", "mcf"),
                            references=1000, seed=9)
        first = list(fleet.tenants())
        second = list(fleet.tenants())
        assert first == second
        assert len({t.name for t in first}) == 32

    def test_fleet_weights(self):
        fleet = TenantFleet(size=64, workloads=("gups", "mcf"),
                            scenarios=("medium",), references=1000, seed=9,
                            workload_weights=(1.0, 0.0))
        assert all(t.workload == "gups" for t in fleet.tenants())

    def test_fleet_validation(self):
        with pytest.raises(ValueError):
            TenantFleet(size=0, workloads=("gups",))
        with pytest.raises(ValueError):
            TenantFleet(size=2, workloads=())
        with pytest.raises(ValueError):
            TenantFleet(size=2, workloads=("gups",),
                        workload_weights=(0.5, 0.5))

    def test_simulate_fleet_deterministic(self):
        fleet = TenantFleet(size=12, workloads=("gups",),
                            scenarios=("medium", "high"),
                            references=2000, seed=21)
        a = simulate_fleet(fleet, scheme="base", policy="tagged",
                           quantum=500, active_pool=4).to_dict()
        b = simulate_fleet(fleet, scheme="base", policy="tagged",
                           quantum=500, active_pool=4).to_dict()
        # to_dict is the byte-identity surface: peak RSS (a process-wide
        # monotonic gauge) stays off it, so no field needs masking.
        assert a == b

    def test_executed_conserved_and_grouped(self):
        fleet = TenantFleet(size=10, workloads=("gups",),
                            scenarios=("medium",), references=1500, seed=2)
        result = simulate_fleet(fleet, scheme="base", policy="tagged",
                                quantum=400, active_pool=4)
        assert result.executed == 10 * 1500
        assert result.stats.accesses == 10 * 1500
        group = result.groups["gups/medium"]
        assert group["tenants"] == 10
        assert group["accesses"] == 10 * 1500
        assert result.per_tenant is not None and len(result.per_tenant) == 10

    def test_asid_namespace_recycling(self):
        fleet = TenantFleet(size=20, workloads=("gups",),
                            scenarios=("medium",), references=800, seed=3)
        result = simulate_fleet(fleet, scheme="base", policy="tagged",
                                quantum=400, active_pool=4, asid_bits=3)
        # 7 usable ASIDs for 20 tenants: the namespace wraps twice.
        assert result.asid_recycles == 20 - 7
        wide = simulate_fleet(fleet, scheme="base", policy="tagged",
                              quantum=400, active_pool=4)
        assert wide.asid_recycles == 0

    def test_unsafe_scheme_rejected_for_tagged_fleet(self):
        fleet = TenantFleet(size=2, workloads=("gups",),
                            scenarios=("medium",), references=500, seed=1)
        with pytest.raises(ValueError, match="tag_safe_block"):
            simulate_fleet(fleet, scheme="anchor-region", policy="tagged",
                           quantum=200, active_pool=2)
        # ...but flush-policy fleets may use any scheme.
        result = simulate_fleet(fleet, scheme="anchor-region", policy="flush",
                                quantum=200, active_pool=2)
        assert result.executed == 1000

    @pytest.mark.parametrize(
        "name", ["cluster", "cluster2mb", "colt", "rmm", "prefetch"])
    def test_coalescing_schemes_admitted_to_tagged_fleet(self, name):
        """The schemes that flipped ``tag_safe_block`` run under
        ``policy="tagged"`` and share one physical hierarchy."""
        fleet = TenantFleet(size=2, workloads=("gups",),
                            scenarios=("medium",), references=500, seed=1)
        result = simulate_fleet(fleet, scheme=name, policy="tagged",
                                quantum=200, active_pool=2)
        assert result.executed == 1000
        assert result.stats.accesses == 1000

    @pytest.mark.parametrize(
        "name", ["cluster", "cluster2mb", "colt", "rmm", "prefetch"])
    def test_tagged_matches_flush_on_exhaustive_quanta(self, name):
        """With the quantum covering a tenant's whole trace, each tenant
        runs exactly once from a cold start: foreign-tag entries never
        match its lookups and nothing intervenes between its accesses,
        so the shared tagged hierarchy must reproduce the per-tenant
        flush stats counter for counter."""
        fleet = TenantFleet(size=2, workloads=("gups",),
                            scenarios=("medium", "high"), references=800,
                            seed=13)
        runs = {
            policy: simulate_fleet(fleet, scheme=name, policy=policy,
                                   quantum=800, active_pool=2)
            for policy in ("tagged", "flush")
        }
        tagged = runs["tagged"].per_tenant
        flush = runs["flush"].per_tenant
        assert tagged is not None and flush is not None
        assert len(tagged) == len(flush) == 2
        for t_row, f_row in zip(tagged, flush):
            # The ASID is scheduler bookkeeping (tagged allocates real
            # tags, flush leaves 0); every translation counter must match.
            t_row = {k: v for k, v in t_row.items() if k != "asid"}
            f_row = {k: v for k, v in f_row.items() if k != "asid"}
            assert t_row == f_row


class TestAsidAllocator:
    class _Recorder:
        def __init__(self):
            self.flushed = []

        def flush_tag(self, tag):
            self.flushed.append(tag)

    def test_wraps_and_shoots_down(self):
        recorder = self._Recorder()
        allocator = _AsidAllocator([recorder], bits=2)  # ASIDs {1, 2, 3}
        assert [allocator.allocate() for _ in range(3)] == [1, 2, 3]
        assert recorder.flushed == []
        assert allocator.allocate() == 1
        assert recorder.flushed == [1]
        assert allocator.recycles == 1

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            _AsidAllocator([], bits=0)
        with pytest.raises(ValueError):
            _AsidAllocator([], bits=TAG_BITS + 1)

    def test_shootdown_exactly_once_per_wrapped_tag(self):
        """Across multiple full wraps, every reuse of a tag shoots that
        tag down exactly once — never a neighbour's tag, never twice."""
        recorder = self._Recorder()
        allocator = _AsidAllocator([recorder], bits=2)  # ASIDs {1, 2, 3}
        tags = [allocator.allocate() for _ in range(9)]  # three full cycles
        assert tags == [1, 2, 3] * 3
        # First cycle is virgin; each later allocation flushes its tag once.
        assert recorder.flushed == [1, 2, 3, 1, 2, 3]
        assert allocator.recycles == 6

    def test_shootdown_hits_every_shared_structure(self):
        first, second = self._Recorder(), self._Recorder()
        allocator = _AsidAllocator([first, second], bits=1)  # only ASID 1
        assert allocator.allocate() == 1
        assert allocator.allocate() == 1
        assert first.flushed == second.flushed == [1]

    def test_tagged_matches_flush_across_asid_wrap(self):
        """The wrap boundary must be invisible to per-tenant stats: with
        exhaustive quanta each tenant still starts from a state holding
        no entries under its (recycled, freshly shot-down) tag, so the
        tagged hierarchy reproduces the flush counters even after the
        namespace wraps several times within the shard."""
        fleet = TenantFleet(size=10, workloads=("gups",),
                            scenarios=("medium", "high"), references=600,
                            seed=29)
        runs = {
            policy: simulate_fleet(fleet, scheme="anchor-dyn", policy=policy,
                                   quantum=600, active_pool=2, asid_bits=2)
            for policy in ("tagged", "flush")
        }
        # 10 tenants through 3 usable ASIDs: the namespace wrapped.
        assert runs["tagged"].asid_recycles >= 7
        tagged = runs["tagged"].per_tenant
        flush = runs["flush"].per_tenant
        assert tagged is not None and flush is not None
        assert len(tagged) == len(flush) == 10
        for t_row, f_row in zip(tagged, flush):
            t_row = {k: v for k, v in t_row.items() if k != "asid"}
            f_row = {k: v for k, v in f_row.items() if k != "asid"}
            assert t_row == f_row


class TestDistanceRegisterFile:
    def test_save_restore_roundtrip(self):
        registers = DistanceRegisterFile()
        assert registers.restore("t0") is None
        registers.save("t0", 64)
        registers.save("t1", 4)
        assert registers.restore("t0") == 64
        assert registers.saves == 2 and registers.restores == 1
        assert "t1" in registers and len(registers) == 2
        assert registers.to_dict() == {"t0": 64, "t1": 4}

    def test_rejects_invalid_distance(self):
        with pytest.raises(ValueError):
            DistanceRegisterFile().save("t0", 0)

    def test_per_tenant_distances_survive_switches(self):
        """§3.1 at fleet scale: tenants with very different mappings keep
        their own anchor distances across every context switch."""
        big = MemoryMapping()
        big.map_run(0, FrameRange((1 << 22) + 1, 8192))
        small = MemoryMapping()
        cursor = 1 << 24
        for vpn in range(2048):
            if vpn % 4 == 0:
                cursor += 3
            small.map_page(vpn, cursor)
            cursor += 1

        rng = np.random.default_rng(8)
        members = [
            TenantRun("big", AnchorScheme(big),
                      _Cursor(iter([rng.integers(0, 8192, 2000)
                                    .astype(np.int64)]))),
            TenantRun("small", AnchorScheme(small),
                      _Cursor(iter([rng.integers(0, 2048, 2000)
                                    .astype(np.int64)]))),
        ]
        for i, member in enumerate(members):
            member.asid = i + 1
        expected = {m.name: m.scheme.distance for m in members}
        assert expected["big"] >= 1024 and expected["small"] <= 8
        run_schedule(members, quantum=250, policy="tagged",
                     registers=DistanceRegisterFile())
        for member in members:
            assert member.scheme.distance == expected[member.name]


@pytest.mark.skipif(
    not os.environ.get("ANCHOR_TLB_FLEET_10K"),
    reason="10k-tenant bounded-memory run; set ANCHOR_TLB_FLEET_10K=1",
)
def test_ten_thousand_tenant_fleet_bounded_memory():
    """ISSUE acceptance: a 10,000-tenant fleet completes with peak RSS
    O(epoch x active pool), not O(tenants)."""
    before = peak_rss_bytes()
    fleet = TenantFleet(size=10_000, workloads=("gups", "mcf"),
                        references=1_000, seed=1, mapping_variants=2)
    result = simulate_fleet(fleet, scheme="base", policy="tagged",
                            quantum=1_000, active_pool=8)
    assert result.executed == 10_000 * 1_000
    assert result.waves == 10_000 // 8
    assert result.per_tenant is None  # details elided at this scale
    # 10k tenants' traces would be ~80 MB each if materialised together;
    # the wave scheduler must stay within a small constant overhead.
    growth = peak_rss_bytes() - before
    assert growth < 512 * 1024 * 1024, f"peak RSS grew by {growth} bytes"
