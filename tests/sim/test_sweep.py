"""Tests for the static-ideal distance sweep."""

import numpy as np
import pytest

from repro.mem.frames import FrameRange
from repro.sim.sweep import distance_sweep, static_ideal, useful_distances
from repro.sim.trace import Trace
from repro.vmos.mapping import MemoryMapping


@pytest.fixture
def mapping():
    m = MemoryMapping()
    vpn, pfn = 0, 10_000
    for _ in range(16):          # sixteen 64-page chunks
        m.map_run(vpn, FrameRange(pfn, 64))
        vpn += 65
        pfn += 71
    return m


@pytest.fixture
def trace(mapping):
    rng = np.random.default_rng(1)
    vpns = np.array([vpn for vpn, _ in mapping.items()], dtype=np.int64)
    picks = vpns[rng.integers(0, len(vpns), 4000)]
    return Trace(picks, 12_000, "sweep")


class TestUsefulDistances:
    def test_prunes_beyond_double_largest_chunk(self, mapping):
        kept = useful_distances(mapping)
        assert max(kept) <= 128
        assert 64 in kept

    def test_empty_mapping(self):
        assert useful_distances(MemoryMapping()) == (2,)


class TestSweep:
    def test_sweep_covers_candidates(self, mapping, trace):
        points = distance_sweep(mapping, trace, candidates=(4, 64))
        assert [p.distance for p in points] == [4, 64]
        assert all(p.walks > 0 for p in points)

    def test_subsample_shortens_runs(self, mapping, trace):
        thin = distance_sweep(mapping, trace, candidates=(64,), subsample=4)
        full = distance_sweep(mapping, trace, candidates=(64,))
        assert thin[0].result.stats.accesses < full[0].result.stats.accesses


class TestStaticIdeal:
    def test_returns_best_distance(self, mapping, trace):
        result = static_ideal(mapping, trace)
        sweep = dict(result.extras["sweep"])
        assert result.extras["ideal_distance"] in sweep
        assert sweep[result.extras["ideal_distance"]] == min(sweep.values())
        assert result.scheme == "anchor-ideal"

    def test_ideal_not_worse_than_arbitrary_static(self, mapping, trace):
        result = static_ideal(mapping, trace)
        sweep = dict(result.extras["sweep"])
        assert result.stats.walks <= max(sweep.values())

    def test_subsampled_search_resimulates_full(self, mapping, trace):
        result = static_ideal(mapping, trace, subsample=4)
        assert result.stats.accesses == len(trace)
