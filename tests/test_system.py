"""Tests for the whole-machine System facade."""

import pytest

from repro.system import System


class TestLaunch:
    def test_launch_pages_everything_in(self):
        system = System(seed=1)
        process = system.launch("sphinx3")
        assert process.footprint_pages == process.workload.footprint_pages
        assert process.name == "sphinx3#0"

    def test_memory_sized_lazily(self):
        system = System(seed=1)
        assert system.memory is None
        process = system.launch("sphinx3")
        assert system.memory is not None
        assert system.memory.total_frames >= 2 * process.footprint_pages

    def test_memory_sizing_rule(self):
        # Next power of two at or above twice the footprint, floored at
        # 64 Ki frames.  (A former double-shift made the smallest boot
        # 128 Ki frames and doubled every exact-power-of-two fit.)
        assert System(seed=1)._ensure_memory(100).total_frames == 1 << 16
        assert System(seed=1)._ensure_memory(1 << 15).total_frames == 1 << 16
        assert System(seed=1)._ensure_memory((1 << 15) + 1).total_frames == 1 << 17
        assert System(seed=1)._ensure_memory(40_000).total_frames == 1 << 17

    def test_eager_policy(self):
        system = System(seed=1)
        process = system.launch("sphinx3", policy="eager")
        assert process.policy == "eager"

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            System(seed=1).launch("sphinx3", policy="lazy")

    def test_duplicate_name_rejected(self):
        system = System(seed=1)
        system.launch("sphinx3", name="p")
        with pytest.raises(ValueError):
            system.launch("sphinx3", name="p")

    def test_two_processes_share_memory_and_fragment_each_other(self):
        alone = System(seed=2, pressure="pristine",
                       total_frames=1 << 16).launch("sphinx3")
        crowded_system = System(seed=2, pressure="pristine",
                                total_frames=1 << 16)
        crowded_system.launch("omnetpp")
        crowded = crowded_system.launch("sphinx3")
        # Same seed, same machine size: only the co-runner differs, and
        # the second launch sees a more consumed buddy system.
        assert crowded_system.memory.free_frames < (1 << 16)
        assert crowded.footprint_pages == alone.footprint_pages

    def test_ease_pressure_requires_boot(self):
        with pytest.raises(RuntimeError):
            System(seed=1).ease_pressure(0.5)


class TestRun:
    def test_run_returns_result(self):
        system = System(seed=3)
        process = system.launch("sphinx3")
        result = system.run(process, scheme="base", references=3000)
        assert result.stats.accesses == 3000
        result.stats.check_conservation()

    def test_anchor_beats_base_on_same_system(self):
        system = System(seed=3)
        process = system.launch("sphinx3")
        base = system.run(process, scheme="base", references=5000)
        anchor = system.run(process, scheme="anchor-dyn", references=5000)
        assert anchor.stats.walks < base.stats.walks

    def test_run_together(self):
        system = System(seed=4)
        a = system.launch("sphinx3", name="a")
        b = system.launch("omnetpp", name="b")
        result = system.run_together([a, b], scheme="base",
                                     references=3000, quantum=500)
        assert result.stats["a"].accesses == 3000
        assert result.stats["b"].accesses == 3000
        assert result.switches > 0


class TestCompactionFlow:
    def test_compact_improves_selected_distance(self):
        # milc's regions are 8192 pages — collapsible into 2 MiB windows
        # (sphinx3's 128-page regions would be too small for khugepaged).
        # Memory only 2x the footprint so THP mostly fails at launch.
        system = System(seed=5, pressure="severe", total_frames=1 << 16)
        process = system.launch("milc")
        before = process.selected_distance()
        system.ease_pressure(1.0)
        result = system.compact(process)
        assert result.windows_collapsed > 0
        assert process.selected_distance() >= before

    def test_compact_requires_boot(self):
        system = System(seed=5)
        process_like = None
        with pytest.raises(RuntimeError):
            system.compact(process_like)
