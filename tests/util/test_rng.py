"""Determinism tests for the RNG helpers."""

from repro.util.rng import make_rng, spawn_rng


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(5).integers(0, 1 << 30, 10)
        b = make_rng(5).integers(0, 1 << 30, 10)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = make_rng(5).integers(0, 1 << 30, 10)
        b = make_rng(6).integers(0, 1 << 30, 10)
        assert (a != b).any()

    def test_default_seed_is_stable(self):
        a = make_rng().integers(0, 1 << 30, 4)
        b = make_rng(None).integers(0, 1 << 30, 4)
        assert (a == b).all()


class TestSpawnRng:
    def test_same_path_same_stream(self):
        a = spawn_rng(1, "x", 2).integers(0, 1 << 30, 8)
        b = spawn_rng(1, "x", 2).integers(0, 1 << 30, 8)
        assert (a == b).all()

    def test_different_paths_differ(self):
        a = spawn_rng(1, "x").integers(0, 1 << 30, 8)
        b = spawn_rng(1, "y").integers(0, 1 << 30, 8)
        assert (a != b).any()

    def test_child_independent_of_parent_draws(self):
        parent_seed = 9
        child1 = spawn_rng(parent_seed, "w").integers(0, 100, 4)
        # Drawing from another sub-stream must not perturb the first.
        spawn_rng(parent_seed, "other").integers(0, 100, 1000)
        child2 = spawn_rng(parent_seed, "w").integers(0, 100, 4)
        assert (child1 == child2).all()
