"""Tests for the text chart renderers."""

import pytest

from repro.util.charts import bar_chart, cdf_sketch, stacked_bar_chart


class TestBarChart:
    def test_rows_and_scaling(self):
        text = bar_chart(["a", "bb"], [50.0, 100.0], width=10)
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") == 10      # max value fills the bar
        assert lines[0].count("#") == 5

    def test_unit_suffix(self):
        assert "42.0%" in bar_chart(["x"], [42.0], unit="%")

    def test_explicit_max(self):
        text = bar_chart(["x"], [50.0], width=10, max_value=100.0)
        assert text.count("#") == 5

    def test_value_above_max_clamped(self):
        text = bar_chart(["x"], [200.0], width=10, max_value=100.0)
        assert text.count("#") == 10

    def test_empty(self):
        assert bar_chart([], []) == ""

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])


class TestStackedBarChart:
    def test_components_rendered(self):
        text = stacked_bar_chart(["x"], [[5.0, 5.0]], width=10)
        assert "#####=====" in text

    def test_total_label(self):
        assert "10.00" in stacked_bar_chart(["x"], [[5.0, 5.0]], width=10)

    def test_scaling_across_rows(self):
        text = stacked_bar_chart(["a", "b"], [[10.0], [5.0]], width=10)
        short = text.splitlines()[1]
        assert short.count("#") == 5

    def test_too_many_components(self):
        with pytest.raises(ValueError):
            stacked_bar_chart(["x"], [[1.0] * 9], part_symbols="#")

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            stacked_bar_chart(["a"], [])


class TestCDFSketch:
    def test_shades_increase(self):
        sketch = cdf_sketch(
            {"run": [(1, 0.1), (4, 0.5), (16, 1.0)]}, [1, 4, 16]
        )
        assert "final=1.00" in sketch

    def test_empty_series_value(self):
        sketch = cdf_sketch({"run": []}, [1, 2])
        assert "final=0.00" in sketch

    def test_alignment(self):
        sketch = cdf_sketch(
            {"a": [(1, 1.0)], "longer": [(1, 0.5)]}, [1]
        )
        lines = sketch.splitlines()
        assert lines[0].index("[") == lines[1].index("[")
