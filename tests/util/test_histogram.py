"""Unit and property tests for the histogram/CDF utilities."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.histogram import Histogram, cdf_points


class TestHistogramBasics:
    def test_empty_is_falsy(self):
        assert not Histogram()
        assert len(Histogram()) == 0
        assert Histogram().total_items == 0
        assert Histogram().total_weight == 0

    def test_add_and_lookup(self):
        h = Histogram()
        h.add(4)
        h.add(4, 2)
        h.add(16)
        assert h[4] == 3
        assert h[16] == 1
        assert h[99] == 0

    def test_construct_from_iterable(self):
        h = Histogram([1, 1, 2, 8])
        assert h[1] == 2
        assert h[2] == 1
        assert h[8] == 1

    def test_items_sorted(self):
        h = Histogram([16, 2, 8, 2])
        assert list(h.items()) == [(2, 2), (8, 1), (16, 1)]

    def test_totals(self):
        h = Histogram([3, 3, 10])
        assert h.total_items == 3
        assert h.total_weight == 16

    def test_rejects_nonpositive_keys(self):
        h = Histogram()
        with pytest.raises(ValueError):
            h.add(0)
        with pytest.raises(ValueError):
            h.add(-3)

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            Histogram().add(1, -1)

    def test_zero_count_is_noop(self):
        h = Histogram()
        h.add(5, 0)
        assert not h

    def test_discard_partial_and_full(self):
        h = Histogram([4, 4, 4])
        h.discard(4)
        assert h[4] == 2
        h.discard(4, 5)  # clamps
        assert h[4] == 0
        assert not h

    def test_discard_missing_key_is_noop(self):
        h = Histogram([2])
        h.discard(9)
        assert h[2] == 1

    def test_copy_is_independent(self):
        h = Histogram([2])
        c = h.copy()
        c.add(2)
        assert h[2] == 1
        assert c[2] == 2

    def test_equality(self):
        assert Histogram([1, 2]) == Histogram([2, 1])
        assert Histogram([1]) != Histogram([2])
        assert Histogram() != object()  # NotImplemented path falls back


class TestCDF:
    def test_empty(self):
        assert cdf_points(Histogram()) == []

    def test_weighted_reaches_one(self):
        h = Histogram([1, 2, 4, 8])
        points = cdf_points(h, weighted=True)
        assert points[-1][1] == pytest.approx(1.0)

    def test_unweighted_reaches_one(self):
        points = cdf_points(Histogram([1, 5, 5]), weighted=False)
        assert points[-1][1] == pytest.approx(1.0)

    def test_weighted_values(self):
        h = Histogram([1, 3])  # 1 page in size-1, 3 pages in size-3
        points = dict(cdf_points(h, weighted=True))
        assert points[1] == pytest.approx(0.25)
        assert points[3] == pytest.approx(1.0)

    def test_unweighted_values(self):
        h = Histogram([1, 3])
        points = dict(cdf_points(h, weighted=False))
        assert points[1] == pytest.approx(0.5)

    @given(st.lists(st.integers(1, 200), min_size=1, max_size=60))
    def test_monotone_nondecreasing(self, keys):
        points = cdf_points(Histogram(keys))
        fractions = [f for _, f in points]
        assert all(a <= b for a, b in zip(fractions, fractions[1:]))
        assert fractions[-1] == pytest.approx(1.0)

    @given(st.lists(st.integers(1, 50), min_size=1, max_size=40))
    def test_keys_strictly_increasing(self, keys):
        points = cdf_points(Histogram(keys))
        sizes = [s for s, _ in points]
        assert sizes == sorted(set(sizes))
