"""Tests for the ASCII table renderer."""

import pytest

from repro.util.tables import format_percent_bar, format_table


class TestFormatTable:
    def test_simple_table(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4.25]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert "a" in lines[0] and "bb" in lines[0]
        assert "2.5" in lines[2]

    def test_title(self):
        text = format_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_precision(self):
        text = format_table(["x"], [[1.23456]], precision=3)
        assert "1.235" in text

    def test_strings_pass_through(self):
        text = format_table(["n", "v"], [["row", "val"]])
        assert "row" in text and "val" in text

    def test_alignment_widths(self):
        text = format_table(["name"], [["a-very-long-cell"]])
        header, rule, row = text.splitlines()
        assert len(header) == len(rule) == len(row)

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert len(text.splitlines()) == 2


class TestPercentBar:
    def test_empty_and_full(self):
        assert format_percent_bar(0.0, 10) == "." * 10
        assert format_percent_bar(1.0, 10) == "#" * 10

    def test_half(self):
        assert format_percent_bar(0.5, 10) == "#" * 5 + "." * 5

    def test_clamps(self):
        assert format_percent_bar(-1.0, 4) == "...."
        assert format_percent_bar(2.0, 4) == "####"
