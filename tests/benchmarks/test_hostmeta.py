"""The benchmark envelope's host block: shape, commit, and dirty flag."""

import subprocess
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

import hostmeta  # noqa: E402
from hostmeta import host_metadata  # noqa: E402


def test_host_metadata_shape():
    meta = host_metadata()
    assert set(meta) == {
        "python", "implementation", "numpy", "platform", "machine",
        "cpu_count", "usable_cpus", "commit", "dirty",
    }
    assert meta["cpu_count"] >= 1
    assert meta["usable_cpus"] >= 1


def test_dirty_reflects_working_tree(tmp_path, monkeypatch):
    def git(*argv):
        subprocess.run(["git", *argv], cwd=tmp_path, check=True,
                       capture_output=True)

    git("init", "-q")
    git("config", "user.email", "bench@example.invalid")
    git("config", "user.name", "bench")
    (tmp_path / "a.txt").write_text("one\n")
    git("add", "a.txt")
    git("commit", "-q", "-m", "seed")

    monkeypatch.chdir(tmp_path)
    assert hostmeta._git_dirty() is False
    (tmp_path / "a.txt").write_text("two\n")
    assert hostmeta._git_dirty() is True
    # Untracked files count too: the tree no longer matches the commit.
    (tmp_path / "a.txt").write_text("one\n")
    (tmp_path / "b.txt").write_text("new\n")
    assert hostmeta._git_dirty() is True


def test_dirty_none_outside_git(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert hostmeta._git_dirty() is None


def test_dirty_none_when_git_missing(monkeypatch):
    def boom(*args, **kwargs):
        raise OSError("no git")

    monkeypatch.setattr(hostmeta.subprocess, "run", boom)
    assert hostmeta._git_dirty() is None
    assert hostmeta._git_commit() is None
