"""Golden-stats regression corpus (DESIGN.md §6.1, ISSUE 7).

Every registered scheme is run over small fixed-seed workload traces —
with and without the page-walk caches — and the resulting
``TranslationStats`` snapshot is compared bit-for-bit against a
checked-in JSON file under ``tests/golden/``.  Any counter drift
(an extra walk, one fewer coalesced hit, a changed pt-access count)
fails with the exact cells and keys that moved.

The corpus is the repo's long-term memory of engine behaviour: the
hypothesis differential suites prove scalar==batched *today*, while
this corpus proves today==the day the numbers were frozen.  To update
the corpus after a deliberate behaviour change:

    PYTHONPATH=src python -m pytest tests/golden --refresh-golden

then review the JSON diff like any other code change.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.params import MachineConfig, TLBGeometry
from repro.schemes.registry import make_scheme, scheme_names
from repro.sim.engine import run_trace
from repro.sim.workloads import get_workload
from repro.vmos.scenarios import build_mapping

GOLDEN_DIR = Path(__file__).resolve().parent

#: Fixed-seed corpus shape.  Three workloads span the interesting
#: allocation regimes: omnetpp (thousands of small heap chunks),
#: sphinx3 (mixed small regions), gups (one giant array, uniform
#: random — the TLB-hostile worst case).
WORKLOADS = ("omnetpp", "sphinx3", "gups")
SCENARIO = "demand"
MAPPING_SEED = 101
TRACE_SEED = 202
REFERENCES = 4_000
EPOCH = 1_500  # forces multi-epoch runs so chunking is in the loop

#: Shrunken machine so the short traces still trigger evictions on
#: every structure (same geometry the parity suites use).
TINY = MachineConfig(
    l1_4k=TLBGeometry(8, 2),
    l1_2m=TLBGeometry(4, 2),
    l2=TLBGeometry(32, 4),
)

ALL_SCHEMES = scheme_names(include_extras=True)


def golden_path(scheme_name: str) -> Path:
    return GOLDEN_DIR / f"stats_{scheme_name}.json"


def cell_key(workload: str, pwc: bool) -> str:
    return f"{workload}/pwc={'on' if pwc else 'off'}"


@pytest.fixture(scope="module")
def corpus_inputs():
    """Mappings and traces, built once per run (deterministic seeds)."""
    inputs = {}
    for name in WORKLOADS:
        workload = get_workload(name)
        mapping = build_mapping(workload.vmas(), SCENARIO, seed=MAPPING_SEED)
        trace = workload.make_trace(REFERENCES, seed=TRACE_SEED)
        inputs[name] = (mapping, trace)
    return inputs


def compute_cells(scheme_name: str, corpus_inputs) -> dict[str, dict]:
    cells: dict[str, dict] = {}
    for workload in WORKLOADS:
        mapping, trace = corpus_inputs[workload]
        for pwc in (False, True):
            machine = dataclasses.replace(TINY, pwc=True) if pwc else TINY
            scheme = make_scheme(scheme_name, mapping, machine)
            run_trace(scheme, trace, epoch_references=EPOCH)
            cells[cell_key(workload, pwc)] = scheme.stats.snapshot()
    return cells


@pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
def test_golden_stats(scheme_name, corpus_inputs, refresh_golden):
    path = golden_path(scheme_name)
    cells = compute_cells(scheme_name, corpus_inputs)
    payload = {
        "meta": {
            "scenario": SCENARIO,
            "workloads": list(WORKLOADS),
            "mapping_seed": MAPPING_SEED,
            "trace_seed": TRACE_SEED,
            "references": REFERENCES,
            "epoch_references": EPOCH,
            "machine": "tiny(l1=8x2, l1_2m=4x2, l2=32x4)",
        },
        "cells": cells,
    }
    if refresh_golden:
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        return
    assert path.exists(), (
        f"no golden corpus for {scheme_name!r}; generate it with "
        f"--refresh-golden and check in {path.name}")
    golden = json.loads(path.read_text())
    assert golden["meta"] == payload["meta"], (
        "corpus parameters changed — regenerate with --refresh-golden")
    drift = []
    for key in sorted(set(golden["cells"]) | set(cells)):
        want = golden["cells"].get(key)
        got = cells.get(key)
        if want == got:
            continue
        moved = sorted(
            k for k in set(want or {}) | set(got or {})
            if (want or {}).get(k) != (got or {}).get(k))
        drift.append(f"{key}: {moved} "
                     f"(golden {[ (want or {}).get(k) for k in moved ]} "
                     f"!= got {[ (got or {}).get(k) for k in moved ]})")
    assert not drift, (
        f"{scheme_name}: golden stats drifted in {len(drift)} cell(s):\n  "
        + "\n  ".join(drift)
        + "\nIf the change is deliberate, rerun with --refresh-golden "
          "and review the JSON diff.")


def test_corpus_complete():
    """Every registered scheme has a checked-in corpus file (and no
    stale files for deregistered schemes linger)."""
    expected = {golden_path(name).name for name in ALL_SCHEMES}
    present = {p.name for p in GOLDEN_DIR.glob("stats_*.json")}
    assert present == expected, (
        f"missing: {sorted(expected - present)}; "
        f"stale: {sorted(present - expected)}")
