"""Shared fixtures: small deterministic mappings, traces, and RNGs."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.mem.physmem import PhysicalMemory
from repro.params import MachineConfig, TLBGeometry
from repro.sim.trace import Trace
from repro.util.rng import make_rng
from repro.vmos.mapping import MemoryMapping
from repro.vmos.scenarios import build_mapping
from repro.vmos.vma import VMA, AllocationSite, layout_vmas


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--refresh-golden", action="store_true", default=False,
        help="regenerate the checked-in golden stats corpus under "
             "tests/golden/ instead of comparing against it",
    )
    parser.addoption(
        "--sanitize", action="store_true", default=False,
        help="enable the runtime write guards (repro.sanitize): "
             "FrozenMapping columns and prototype-shared arrays become "
             "read-only at share time, so aliasing bugs crash loudly",
    )


def pytest_configure(config: pytest.Config) -> None:
    if config.getoption("--sanitize"):
        # The env var (not a global) carries the switch so pool workers
        # forked/spawned by the orchestrator inherit the guard mode.
        os.environ["ANCHOR_TLB_SANITIZE"] = "1"


@pytest.fixture(scope="session")
def refresh_golden(request: pytest.FixtureRequest) -> bool:
    return bool(request.config.getoption("--refresh-golden"))


@pytest.fixture
def rng() -> np.random.Generator:
    return make_rng(7)


@pytest.fixture
def small_vmas() -> list[VMA]:
    """A compact layout: one big region, several small ones."""
    return layout_vmas([
        AllocationSite(1024, 1),
        AllocationSite(64, 4),
        AllocationSite(8, 8),
    ])


@pytest.fixture
def medium_mapping(small_vmas) -> MemoryMapping:
    return build_mapping(small_vmas, "medium", seed=11)


@pytest.fixture
def max_mapping(small_vmas) -> MemoryMapping:
    return build_mapping(small_vmas, "max", seed=11)


@pytest.fixture
def demand_mapping(small_vmas) -> MemoryMapping:
    return build_mapping(small_vmas, "demand", seed=11)


@pytest.fixture
def contiguous_mapping() -> MemoryMapping:
    """A trivially fully contiguous mapping: vpn -> vpn + 0x100."""
    mapping = MemoryMapping(vmas=[VMA(0x1000, 256)])
    for i in range(256):
        mapping.map_page(0x1000 + i, 0x1100 + i)
    return mapping


@pytest.fixture
def fragmented_mapping(rng) -> MemoryMapping:
    """Every page mapped to a scattered frame: no contiguity at all."""
    mapping = MemoryMapping(vmas=[VMA(0x2000, 128)])
    frames = rng.permutation(4096)[:128] + 8192
    # Reject accidental adjacency by spacing odd/even frames.
    for i, pfn in enumerate(sorted(int(f) for f in frames)):
        mapping.map_page(0x2000 + i, pfn * 2)
    return mapping


@pytest.fixture
def tiny_machine() -> MachineConfig:
    """A shrunken machine so capacity effects appear with short traces."""
    return MachineConfig(
        l1_4k=TLBGeometry(8, 2),
        l1_2m=TLBGeometry(4, 2),
        l2=TLBGeometry(32, 4),
    )


@pytest.fixture
def small_memory() -> PhysicalMemory:
    return PhysicalMemory(total_frames=1 << 14, profile="pristine", seed=3)


def trace_of(vpns: list[int], instructions: int | None = None, name: str = "t") -> Trace:
    """Helper to build ad-hoc traces in tests."""
    array = np.asarray(vpns, dtype=np.int64)
    return Trace(array, instructions or max(1, len(vpns) * 3), name)


@pytest.fixture
def make_trace():
    return trace_of
