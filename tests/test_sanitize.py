"""The opt-in runtime write-guard (``ANCHOR_TLB_SANITIZE=1``).

The static rules model which state is shared read-only by contract;
this suite proves the sanitizer turns that model into an actual trap —
and that every registered scheme still clones and runs cleanly with
the guards armed (the same property the sanitized CI job gates).
"""

import numpy as np
import pytest

from repro import sanitize
from repro.params import DEFAULT_MACHINE
from repro.schemes.registry import make_scheme, scheme_names
from repro.vmos.scenarios import build_mapping
from repro.vmos.vma import AllocationSite, layout_vmas


@pytest.fixture()
def guards_on(monkeypatch):
    monkeypatch.setenv(sanitize.ENV_VAR, "1")


@pytest.fixture(scope="module")
def mapping_args():
    vmas = layout_vmas([AllocationSite(256, 1), AllocationSite(32, 2)])
    return vmas


class TestSwitch:
    def test_disabled_by_default_values(self, monkeypatch):
        monkeypatch.delenv(sanitize.ENV_VAR, raising=False)
        assert not sanitize.enabled()
        monkeypatch.setenv(sanitize.ENV_VAR, "")
        assert not sanitize.enabled()
        monkeypatch.setenv(sanitize.ENV_VAR, "0")
        assert not sanitize.enabled()

    def test_any_other_value_enables(self, monkeypatch):
        monkeypatch.setenv(sanitize.ENV_VAR, "1")
        assert sanitize.enabled()


class TestFreezeRelease:
    def test_chases_arrays_through_containers(self):
        a, b, c = (np.zeros(4), np.zeros(4), np.zeros(4))
        nest = {"pair": (a, [b]), "solo": c, "other": "not-an-array"}
        assert sanitize.freeze_arrays(nest) == 3
        for arr in (a, b, c):
            with pytest.raises(ValueError, match="read-only"):
                arr[0] = 1
        assert sanitize.release_arrays(nest) == 3
        a[0] = 1  # writable again

    def test_views_are_skipped(self):
        base = np.zeros(8)
        view = base[2:6]
        assert sanitize.freeze_arrays(view) == 0
        assert sanitize.freeze_arrays(base) == 1
        # Views taken after the seal inherit read-only (the share
        # protocol freezes before clones materialise their views).
        with pytest.raises(ValueError, match="read-only"):
            base[4:8][0] = 1
        assert sanitize.release_arrays(base) == 1

    def test_freeze_is_idempotent(self):
        arr = np.zeros(4)
        assert sanitize.freeze_arrays(arr) == 1
        assert sanitize.freeze_arrays(arr) == 0
        assert sanitize.release_arrays(arr) == 1


class TestFrozenMappingSeal:
    def test_columns_trap_writes_under_guard(self, guards_on, mapping_args):
        mapping = build_mapping(mapping_args, "medium", seed=11)
        frozen = mapping.frozen()
        with pytest.raises(ValueError, match="read-only"):
            frozen.vpns[0] = 99
        with pytest.raises(ValueError, match="read-only"):
            frozen.pfns[-1] = 99

    def test_columns_stay_writable_without_guard(self, monkeypatch,
                                                 mapping_args):
        monkeypatch.delenv(sanitize.ENV_VAR, raising=False)
        mapping = build_mapping(mapping_args, "medium", seed=11)
        frozen = mapping.frozen()
        assert frozen.vpns.flags.writeable


class TestCloneGuard:
    @pytest.mark.parametrize(
        "scheme_name", scheme_names(include_extras=True))
    def test_all_schemes_clone_and_run_guarded(self, guards_on,
                                               mapping_args, scheme_name):
        mapping = build_mapping(mapping_args, "medium", seed=5)
        proto = make_scheme(scheme_name, mapping, DEFAULT_MACHINE)
        clone = proto.clone_fresh()
        clone.sync_mapping()
        vpns = np.asarray(
            sorted(vpn for vpn, _ in mapping.items())[:64], dtype=np.int64)
        clone.access_block(vpns)
        for vpn in vpns[:8]:
            clone.access(int(vpn))
        clone.stats.check_conservation()

    def test_guard_freezes_shared_not_per_clone(self, guards_on,
                                                mapping_args):
        mapping = build_mapping(mapping_args, "medium", seed=5)
        proto = make_scheme("anchor-dyn", mapping, DEFAULT_MACHINE)
        proto.clone_fresh()
        shared_arrays = [
            arr
            for attr, value in vars(proto).items()
            if attr not in sanitize._PER_CLONE_ATTRS
            for arr in sanitize._arrays_in(value)
            if arr.base is None
        ]
        assert shared_arrays
        assert all(not arr.flags.writeable for arr in shared_arrays)
