"""The repository's central invariant (DESIGN.md §6.1):

Every translation scheme must translate every mapped page to exactly
the PFN the ground-truth mapping holds, on every scenario — and the
cycles-charging ``access`` path must agree with the pure ``translate``
path.
"""

import pytest

from repro.params import SCENARIO_ORDER
from repro.schemes.registry import make_scheme, scheme_names
from repro.vmos.scenarios import build_mapping
from repro.vmos.vma import AllocationSite, layout_vmas

ALL_SCHEMES = scheme_names(include_extras=True)


@pytest.fixture(scope="module")
def vmas():
    return layout_vmas([AllocationSite(1024, 1), AllocationSite(48, 3)])


@pytest.mark.parametrize("scenario", SCENARIO_ORDER)
@pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
def test_translate_matches_ground_truth(vmas, scenario, scheme_name):
    mapping = build_mapping(vmas, scenario, seed=23)
    scheme = make_scheme(scheme_name, mapping)
    for vpn, pfn in mapping.items():
        assert scheme.translate(vpn) == pfn, (scheme_name, scenario, hex(vpn))
        assert scheme.translate_checked(vpn) == pfn


@pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
def test_access_path_consistent_with_translate(vmas, scheme_name):
    """Drive accesses (stateful TLBs) and re-check pure translation."""
    mapping = build_mapping(vmas, "medium", seed=29)
    scheme = make_scheme(scheme_name, mapping)
    vpns = [vpn for vpn, _ in list(mapping.items())[::7]]
    for repeat in range(2):  # second pass exercises all hit paths
        for vpn in vpns:
            cycles = scheme.access(vpn)
            assert cycles >= 0
            assert scheme.translate(vpn) == mapping.translate(vpn)
    scheme.stats.check_conservation()


@pytest.mark.parametrize("distance", [2, 16, 512, 65536])
def test_anchor_static_distances_also_correct(vmas, distance):
    mapping = build_mapping(vmas, "medium", seed=31)
    scheme = make_scheme("anchor-static", mapping, distance=distance)
    for vpn, pfn in list(mapping.items())[::11]:
        assert scheme.translate(vpn) == pfn
