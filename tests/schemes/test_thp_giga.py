"""Tests for 1 GiB page support (paper §2.1)."""

import pytest

from repro.mem.frames import FrameRange
from repro.params import GIGA_PAGE_PAGES
from repro.schemes.base import promote_giga_pages
from repro.schemes.registry import make_scheme
from repro.schemes.thp import THPScheme
from repro.sim.engine import simulate
from repro.vmos.mapping import MemoryMapping


@pytest.fixture(scope="module")
def giga_friendly():
    """One aligned, phase-matched 1 GiB run plus a 2 MiB remainder."""
    mapping = MemoryMapping()
    mapping.map_run(GIGA_PAGE_PAGES, FrameRange(GIGA_PAGE_PAGES * 2,
                                                GIGA_PAGE_PAGES + 512))
    return mapping


class TestGigaPromotion:
    def test_aligned_run_promotes(self, giga_friendly):
        giga, rest = promote_giga_pages(giga_friendly)
        assert set(giga) == {GIGA_PAGE_PAGES}
        assert len(rest) == 512  # the 2 MiB tail stays

    def test_phase_mismatch_blocks(self):
        mapping = MemoryMapping()
        mapping.map_run(GIGA_PAGE_PAGES, FrameRange(7, GIGA_PAGE_PAGES))
        giga, rest = promote_giga_pages(mapping)
        assert not giga
        assert len(rest) == GIGA_PAGE_PAGES

    def test_sub_giga_run_not_promoted(self):
        mapping = MemoryMapping()
        mapping.map_run(0, FrameRange(0, GIGA_PAGE_PAGES // 2))
        giga, _ = promote_giga_pages(mapping)
        assert not giga


class TestTHP1GScheme:
    def test_registry_name(self, giga_friendly):
        scheme = make_scheme("thp1g", giga_friendly)
        assert scheme.name == "thp1g"
        assert scheme.giga_windows == 1

    def test_one_walk_covers_a_gigabyte(self, giga_friendly):
        scheme = THPScheme(giga_friendly, use_giga=True)
        assert scheme.access(GIGA_PAGE_PAGES) == 50
        # Distant pages of the same 1 GiB window never walk again.
        for offset in (1, 4096, 100_000, GIGA_PAGE_PAGES - 1):
            assert scheme.access(GIGA_PAGE_PAGES + offset) == 0
        assert scheme.stats.walks == 1

    def test_tail_uses_2mb_pages(self, giga_friendly):
        scheme = THPScheme(giga_friendly, use_giga=True)
        tail = GIGA_PAGE_PAGES * 2
        assert scheme.access(tail) == 50         # 2 MiB window walk
        assert scheme.access(tail + 100) == 0    # L1 huge hit
        assert scheme.huge_windows == 1

    def test_translate_all_levels(self, giga_friendly):
        scheme = THPScheme(giga_friendly, use_giga=True)
        for vpn, pfn in list(giga_friendly.items())[:: GIGA_PAGE_PAGES // 8]:
            assert scheme.translate(vpn) == pfn

    def test_plain_thp_ignores_giga(self, giga_friendly):
        scheme = THPScheme(giga_friendly, use_giga=False)
        assert scheme.giga_windows == 0
        # It still translates correctly via 2 MiB pages.
        assert scheme.translate(GIGA_PAGE_PAGES) == GIGA_PAGE_PAGES * 2

    def test_separate_giga_tlb_capacity(self, giga_friendly):
        scheme = THPScheme(giga_friendly, use_giga=True)
        assert scheme.l2_giga.entries == 16

    def test_flush(self, giga_friendly):
        scheme = THPScheme(giga_friendly, use_giga=True)
        scheme.access(GIGA_PAGE_PAGES)
        scheme.flush()
        assert scheme.access(GIGA_PAGE_PAGES) == 50

    def test_conservation(self, giga_friendly, make_trace):
        scheme = THPScheme(giga_friendly, use_giga=True)
        vpns = [GIGA_PAGE_PAGES + i * 977 for i in range(200)]
        simulate(scheme, make_trace(vpns))
        scheme.stats.check_conservation()
