"""Regression: mutating a mapping after scheme construction must not
leave a scheme translating through stale snapshots.

Before the ``FrozenMapping``/version plumbing, every scheme copied the
page table (``mapping.as_dict()``) and OS-side views (promotions, range
tables, anchor directories) into private dicts at construction time and
never looked back — a mapping mutated afterwards silently diverged from
what the scheme translated.  Schemes now track ``mapping.version`` and
resynchronise on the next ``translate``/epoch boundary.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PageFaultError
from repro.params import MachineConfig, TLBGeometry
from repro.schemes.registry import make_scheme, scheme_names
from repro.sim.engine import simulate
from repro.sim.trace import Trace
from repro.vmos.mapping import MemoryMapping
from repro.vmos.vma import VMA

TINY = MachineConfig(
    l1_4k=TLBGeometry(8, 2),
    l1_2m=TLBGeometry(4, 2),
    l2=TLBGeometry(32, 4),
)


def make_mapping() -> MemoryMapping:
    mapping = MemoryMapping(vmas=[VMA(0x1000, 1024)])
    for i in range(900):
        mapping.map_page(0x1000 + i, 0x9000 + i)
    return mapping


ALL_SCHEMES = scheme_names(include_extras=True)


class TestMappingVersionSync:
    @pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
    def test_remap_visible_to_translate(self, scheme_name):
        """Remapping a page to a new frame after construction (and after
        the scheme has warmed its caches) must show up in translate()."""
        mapping = make_mapping()
        scheme = make_scheme(scheme_name, mapping, TINY)
        assert scheme.translate(0x1010) == 0x9010
        mapping.unmap_page(0x1010)
        mapping.map_page(0x1010, 0xFFFF0)
        assert scheme.translate(0x1010) == 0xFFFF0

    @pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
    def test_new_page_visible_to_translate(self, scheme_name):
        mapping = make_mapping()
        scheme = make_scheme(scheme_name, mapping, TINY)
        new_vpn = 0x1000 + 950  # inside the VMA, not yet mapped
        with pytest.raises(PageFaultError):
            scheme.translate(new_vpn)
        mapping.map_page(new_vpn, 0xABCDE)
        assert scheme.translate(new_vpn) == 0xABCDE

    @pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
    @pytest.mark.parametrize("engine", ("scalar", "batched"))
    def test_remap_visible_to_simulation(self, scheme_name, engine):
        """A mutation between two simulate() calls must be honoured by
        the next epoch (both engines resync at epoch boundaries)."""
        mapping = make_mapping()
        scheme = make_scheme(scheme_name, mapping, TINY)
        warm = Trace(np.arange(0x1000, 0x1000 + 256, dtype=np.int64), 768, "w")
        simulate(scheme, warm, epoch_references=128, engine=engine)
        mapping.unmap_page(0x1020)
        mapping.map_page(0x1020, 0x77777)
        probe = Trace(np.full(16, 0x1020, dtype=np.int64), 48, "p")
        simulate(scheme, probe, epoch_references=8, engine=engine)
        assert scheme.translate(0x1020) == 0x77777

    @pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
    def test_unmap_faults_after_sync(self, scheme_name):
        mapping = make_mapping()
        scheme = make_scheme(scheme_name, mapping, TINY)
        assert scheme.translate(0x1005) == 0x9005
        mapping.unmap_page(0x1005)
        with pytest.raises(PageFaultError):
            scheme.translate(0x1005)

    def test_version_counter_bumps_once_per_mutation(self):
        mapping = make_mapping()
        v0 = mapping.version
        mapping.map_page(0x1000 + 950, 0x1)
        assert mapping.version == v0 + 1
        mapping.unmap_page(0x1000 + 950)
        assert mapping.version == v0 + 2
        mapping.set_protection(0x1000, 1, 0b01)
        assert mapping.version == v0 + 3

    def test_frozen_cached_per_version(self):
        mapping = make_mapping()
        frozen_a = mapping.frozen()
        assert mapping.frozen() is frozen_a
        mapping.map_page(0x1000 + 950, 0x2)
        frozen_b = mapping.frozen()
        assert frozen_b is not frozen_a
        assert frozen_b.version == mapping.version
