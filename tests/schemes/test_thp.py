"""Tests for the THP (2 MiB page) scheme."""

import pytest

from repro.mem.frames import FrameRange
from repro.schemes.base import promote_huge_pages
from repro.schemes.thp import THPScheme
from repro.vmos.mapping import MemoryMapping


@pytest.fixture
def huge_friendly():
    """1024 pages, aligned and phase-matched: two promotable windows."""
    mapping = MemoryMapping()
    mapping.map_run(512, FrameRange(4096, 1024))
    return mapping


class TestPromotion:
    def test_aligned_run_promotes(self, huge_friendly):
        huge, small = promote_huge_pages(huge_friendly)
        assert set(huge) == {512, 1024}
        assert not small

    def test_phase_mismatch_blocks_promotion(self):
        mapping = MemoryMapping()
        mapping.map_run(512, FrameRange(4099, 1024))
        huge, small = promote_huge_pages(mapping)
        assert not huge
        assert len(small) == 1024

    def test_partial_window_not_promoted(self):
        mapping = MemoryMapping()
        mapping.map_run(512, FrameRange(4096, 600))
        huge, small = promote_huge_pages(mapping)
        assert set(huge) == {512}
        assert len(small) == 600 - 512

    def test_unaligned_head_skipped(self):
        mapping = MemoryMapping()
        mapping.map_run(700, FrameRange(4096 + 188, 1024))
        huge, _ = promote_huge_pages(mapping)
        assert set(huge) == {1024}


class TestTHPScheme:
    def test_one_walk_covers_whole_window(self, huge_friendly):
        scheme = THPScheme(huge_friendly)
        assert scheme.access(512) == 50
        # Every other page of the same 2 MiB window hits (L1 huge).
        for vpn in range(513, 1024, 37):
            assert scheme.access(vpn) == 0
        assert scheme.stats.walks == 1

    def test_small_pages_still_work(self):
        mapping = MemoryMapping()
        mapping.map_run(0, FrameRange(100, 8))   # not promotable
        scheme = THPScheme(mapping)
        scheme.access(0)
        assert scheme.translate(3) == 103
        assert scheme.huge_windows == 0

    def test_l2_huge_hit_latency(self, huge_friendly, tiny_machine):
        scheme = THPScheme(huge_friendly, tiny_machine)
        scheme.access(512)
        scheme.access(1024)  # second window
        # Evict window 0 from the 4-entry (2 sets x 2 ways) L1 huge.
        for i in range(4):
            scheme.access(512 + 512 * (i % 2))
        # All events are L1 or L2 hits now; verify the stats add up.
        scheme.stats.check_conservation()
        assert scheme.stats.walks == 2

    def test_flush(self, huge_friendly):
        scheme = THPScheme(huge_friendly)
        scheme.access(600)
        scheme.flush()
        assert scheme.access(600) == 50
