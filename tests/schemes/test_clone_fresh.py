"""Differential suite for the prototype-clone contract (clone-contract).

``TranslationScheme.clone_fresh()`` powers the fleet's prototype-cloned
scheme construction: one prototype per mapping key pays the expensive
mapping-derived builds (anchor directories, promotion maps, range
tables), and every tenant receives a clone sharing that state read-only
with fresh per-tenant hardware and stats.  The contract these tests pin:

* a clone is *bit-identical* to a freshly constructed scheme — same
  stats, same per-access latencies — for every registered scheme, on
  every scenario, with the page-walk caches on and off;
* cloning leaves the prototype pristine (no stats, no warm TLBs), and
  clones never alias mutable state back into the prototype or each
  other — including after mid-run mapping updates and the anchor
  scheme's in-place incremental directory maintenance.
"""

import dataclasses

import numpy as np
import pytest

from repro.params import DEFAULT_MACHINE, SCENARIO_ORDER
from repro.schemes.registry import make_scheme, scheme_names
from repro.vmos.scenarios import build_mapping
from repro.vmos.vma import AllocationSite, layout_vmas

ALL_SCHEMES = scheme_names(include_extras=True)

PWC_MACHINE = dataclasses.replace(DEFAULT_MACHINE, pwc=True)


@pytest.fixture(scope="module")
def vmas():
    return layout_vmas([AllocationSite(1024, 1), AllocationSite(48, 3)])


def drive(scheme, vpns):
    """Mixed block + scalar traffic; returns the scalar latency trace."""
    scheme.sync_mapping()
    block = np.asarray(sorted(vpns[: len(vpns) // 2]), dtype=np.int64)
    scheme.access_block(block)
    latencies = [scheme.access(int(v)) for v in vpns[len(vpns) // 2:]]
    scheme.stats.check_conservation()
    return latencies


def sample_vpns(mapping, count=3000, seed=7):
    rng = np.random.default_rng(seed)
    mapped = np.asarray([vpn for vpn, _ in mapping.items()], dtype=np.int64)
    return mapped[rng.integers(0, mapped.shape[0], size=count)]


@pytest.mark.parametrize("pwc", [False, True], ids=["pwc-off", "pwc-on"])
@pytest.mark.parametrize("scenario", SCENARIO_ORDER)
@pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
def test_clone_matches_fresh_construction(vmas, scheme_name, scenario, pwc):
    machine = PWC_MACHINE if pwc else DEFAULT_MACHINE
    mapping = build_mapping(vmas, scenario, seed=23)
    proto = make_scheme(scheme_name, mapping, machine)
    fresh = make_scheme(scheme_name, mapping, machine)
    clone = proto.clone_fresh()
    vpns = sample_vpns(mapping)
    assert drive(clone, vpns) == drive(fresh, vpns)
    assert clone.stats.snapshot() == fresh.stats.snapshot()
    # The prototype stays pristine: cloning must not warm its arrays or
    # touch its stats.
    assert proto.stats.snapshot()["accesses"] == 0
    assert proto.l1.small.occupancy == 0


@pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
def test_clone_identical_after_mid_run_mapping_update(vmas, scheme_name):
    """An external mapping mutation mid-run must leave clone and fresh
    in lockstep: the clone's first post-mutation sync rebinds its own
    derived views without corrupting the prototype's."""
    mapping = build_mapping(vmas, "medium", seed=29)
    proto = make_scheme(scheme_name, mapping)
    fresh = make_scheme(scheme_name, mapping)
    clone = proto.clone_fresh()
    vpns = sample_vpns(mapping, count=2000, seed=11)
    drive(clone, vpns)
    drive(fresh, vpns)

    victim = int(vpns[0])
    mapping.unmap_page(victim)
    survivors = np.asarray(
        [int(v) for v in vpns.tolist() if v != victim], dtype=np.int64)
    assert drive(clone, survivors) == drive(fresh, survivors)
    assert clone.stats.snapshot() == fresh.stats.snapshot()
    # Restore for the module-scoped mapping consumers (build_mapping is
    # per-test here, but keep the mapping self-consistent regardless).
    assert victim not in dict(mapping.items())


def test_second_clone_unaffected_by_first_clones_traffic(vmas):
    mapping = build_mapping(vmas, "medium", seed=23)
    proto = make_scheme("anchor-dyn", mapping)
    first = proto.clone_fresh()
    vpns = sample_vpns(mapping, count=2000, seed=13)
    drive(first, vpns)
    second = proto.clone_fresh()
    fresh = make_scheme("anchor-dyn", mapping)
    assert drive(second, vpns) == drive(fresh, vpns)
    assert second.stats.snapshot() == fresh.stats.snapshot()


def test_anchor_clone_incremental_unmap_does_not_leak(vmas):
    """AnchorScheme's ``unmap_page`` mutates the directory *in place*
    (``note_unmap``); a clone must privatise the shared directory first
    (copy-on-write) so the prototype's plan survives intact."""
    mapping = build_mapping(vmas, "medium", seed=23)
    proto = make_scheme("anchor-dyn", mapping)
    clone = proto.clone_fresh()
    assert clone.directory is proto.directory  # shared until mutated
    victim = next(iter(clone.directory.small))
    clone.unmap_page(victim)
    assert clone.directory is not proto.directory
    assert victim not in clone.directory.small
    # The prototype's in-memory plan is untouched by the clone's
    # incremental maintenance (it will resync from the mapping version
    # bump through its own _on_mapping_update, never through aliasing).
    assert victim in proto.directory.small


def test_prototype_incremental_unmap_does_not_leak_into_clone(vmas):
    """Copy-on-write cuts both ways: once a clone exists, the
    *prototype's* own in-place mutators must privatise too."""
    mapping = build_mapping(vmas, "medium", seed=23)
    proto = make_scheme("anchor-dyn", mapping)
    clone = proto.clone_fresh()
    victim = next(iter(proto.directory.small))
    proto.unmap_page(victim)
    assert proto.directory is not clone.directory
    assert victim in clone.directory.small


@pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
def test_clone_hardware_and_stats_are_private(vmas, scheme_name):
    mapping = build_mapping(vmas, "medium", seed=23)
    proto = make_scheme(scheme_name, mapping)
    clone = proto.clone_fresh()
    assert clone.stats is not proto.stats
    assert clone.l1 is not proto.l1
    for attr in ("l2", "l2_giga", "regular", "clustered", "range_tlb",
                 "predictor", "shootdowns", "pwc"):
        mine = getattr(clone, attr, None)
        theirs = getattr(proto, attr, None)
        if mine is not None:
            assert mine is not theirs, (scheme_name, attr)
