"""Tests for the RMM scheme."""

import pytest

from repro.mem.frames import FrameRange
from repro.schemes.rmm import RMMScheme
from repro.sim.engine import simulate
from repro.vmos.mapping import MemoryMapping


@pytest.fixture
def few_ranges():
    mapping = MemoryMapping()
    mapping.map_run(0, FrameRange(10_000 + 3, 300))      # phase-mismatched
    mapping.map_run(512, FrameRange(20_480, 400))
    return mapping


class TestRMM:
    def test_range_hit_after_walk(self, few_ranges):
        scheme = RMMScheme(few_ranges)
        scheme.access(0)  # walk; refills range [0, 300)
        # A far page of the same range: L1 miss, L2 miss, range hit.
        assert scheme.access(250) == scheme.config.latency.coalesced_hit
        assert scheme.stats.coalesced_hits == 1

    def test_range_thrash_with_many_small_ranges(self, tiny_machine):
        mapping = MemoryMapping()
        for i in range(64):  # 64 ranges > 32-entry range TLB
            mapping.map_run(i * 4, FrameRange(100_000 + i * 16 + 1, 2))
        scheme = RMMScheme(mapping, tiny_machine)
        for _ in range(2):
            for i in range(64):
                scheme.access(i * 4)
        # Second pass: the tiny L2 and the 32-entry range TLB both
        # cycle, so misses persist beyond the 64 compulsory ones.
        assert scheme.stats.walks > 64

    def test_huge_pages_promoted(self):
        mapping = MemoryMapping()
        mapping.map_run(512, FrameRange(4096, 512))
        scheme = RMMScheme(mapping)
        scheme.access(512)
        assert scheme.access(1000) == 0  # same 2 MiB window, L1 huge hit
        assert scheme.stats.walks == 1

    def test_range_serves_huge_window_after_l2_miss(self, tiny_machine):
        mapping = MemoryMapping()
        mapping.map_run(512, FrameRange(4096, 1536))  # three windows
        scheme = RMMScheme(mapping, tiny_machine)
        scheme.access(512)
        scheme.access(1024)
        scheme.access(1536)
        scheme.l1.flush()
        scheme.l2.flush()
        # L2 flushed but the range survives: coalesced hit.
        assert scheme.access(700) == tiny_machine.latency.coalesced_hit

    def test_conservation(self, few_ranges, make_trace):
        scheme = RMMScheme(few_ranges)
        trace = make_trace(
            [vpn for vpn, _ in list(few_ranges.items())[::5]] * 3
        )
        simulate(scheme, trace).stats.check_conservation()
