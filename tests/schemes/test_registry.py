"""Tests for the scheme registry."""

import pytest

from repro.schemes.registry import SCHEME_ORDER, make_scheme, scheme_names


class TestRegistry:
    def test_order_matches_figures(self):
        assert SCHEME_ORDER == (
            "base", "thp", "cluster", "cluster2mb", "rmm", "anchor-dyn"
        )

    def test_every_name_constructs(self, medium_mapping):
        for name in scheme_names(include_extras=True):
            scheme = make_scheme(name, medium_mapping)
            assert scheme.name.startswith(name.split("-")[0])

    def test_anchor_static_requires_distance(self, medium_mapping):
        with pytest.raises(ValueError):
            make_scheme("anchor-static", medium_mapping)
        scheme = make_scheme("anchor-static", medium_mapping, distance=32)
        assert scheme.distance == 32

    def test_unknown_name(self, medium_mapping):
        with pytest.raises(ValueError):
            make_scheme("nope", medium_mapping)

    def test_extras_include_colt(self):
        assert "colt" in scheme_names(include_extras=True)
        assert "colt" not in scheme_names()
