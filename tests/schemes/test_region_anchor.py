"""Tests for the multi-region anchor scheme (paper §4.2)."""

import numpy as np
import pytest

from repro.errors import PageFaultError
from repro.mem.frames import FrameRange
from repro.schemes.anchor_scheme import AnchorScheme
from repro.schemes.region_anchor_scheme import RegionAnchorScheme
from repro.vmos.mapping import MemoryMapping
from repro.vmos.regions import AnchorRegion
from repro.vmos.vma import VMA


@pytest.fixture
def bimodal():
    """A big contiguous region next to a fragmented small one."""
    vmas = [VMA(0, 8192), VMA(8192, 1024)]
    mapping = MemoryMapping(vmas=vmas)
    mapping.map_run(0, FrameRange((1 << 22) + 1, 8192))   # phase-misaligned
    cursor = 1 << 24
    for vpn in range(8192, 9216):
        if vpn % 4 == 0:
            cursor += 3
        mapping.map_page(vpn, cursor)
        cursor += 1
    return mapping


class TestRegionScheme:
    def test_partitions_into_two_distances(self, bimodal):
        scheme = RegionAnchorScheme(bimodal)
        distances = scheme.region_distances
        assert max(distances) >= 4096
        assert min(distances) <= 8

    def test_translation_correct_everywhere(self, bimodal):
        scheme = RegionAnchorScheme(bimodal)
        for vpn, pfn in list(bimodal.items())[::257]:
            assert scheme.translate(vpn) == pfn
            scheme.access(vpn)
            assert scheme.translate(vpn) == pfn
        scheme.stats.check_conservation()

    def test_outside_regions_faults(self, bimodal):
        scheme = RegionAnchorScheme(bimodal)
        with pytest.raises(PageFaultError):
            scheme.access(1 << 30)

    def test_explicit_regions_respected(self, bimodal):
        regions = [AnchorRegion(0, 8192, 4096), AnchorRegion(8192, 9216, 4)]
        scheme = RegionAnchorScheme(bimodal, regions=regions)
        assert scheme.region_distances == [4096, 4]

    def test_capacity_enforced(self, bimodal):
        regions = [AnchorRegion(i * 16, i * 16 + 16, 2) for i in range(4)]
        with pytest.raises(ValueError):
            RegionAnchorScheme(bimodal, capacity=2, regions=regions)

    def test_beats_single_distance_on_bimodal_access(self, bimodal):
        rng = np.random.default_rng(3)
        big = rng.integers(0, 8192, 6000)
        small = rng.integers(8192, 9216, 6000)
        vpns = np.where(rng.random(6000) < 0.5, big, small).tolist()
        single = AnchorScheme(bimodal)
        multi = RegionAnchorScheme(bimodal)
        for vpn in vpns:
            single.access(vpn)
            multi.access(vpn)
        assert multi.stats.walks <= single.stats.walks

    def test_flush(self, bimodal):
        scheme = RegionAnchorScheme(bimodal)
        scheme.access(0)
        scheme.flush()
        assert scheme.access(0) == scheme.config.latency.page_walk
