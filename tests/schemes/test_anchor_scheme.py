"""Tests for the anchor (hybrid coalescing) scheme — Table 2 flows."""

import pytest

from repro.mem.frames import FrameRange
from repro.schemes.anchor_scheme import AnchorScheme
from repro.sim.engine import simulate
from repro.vmos.mapping import MemoryMapping


@pytest.fixture
def two_chunk_mapping():
    """Chunk A [0,64) and chunk B [64,96), physically discontiguous."""
    mapping = MemoryMapping()
    mapping.map_run(0, FrameRange(10_000, 64))
    mapping.map_run(64, FrameRange(50_001, 32))
    return mapping


class TestTable2Flows:
    def test_row2_anchor_hit(self, two_chunk_mapping):
        scheme = AnchorScheme(two_chunk_mapping, distance=16)
        scheme.access(0)                    # walk fills anchor@0
        cycles = scheme.access(7)           # L1 miss, L2 reg miss, anchor hit
        assert cycles == scheme.config.latency.coalesced_hit
        assert scheme.stats.coalesced_hits == 1

    def test_row3_contiguity_miss_fills_regular(self):
        # Anchor at 0 covers only 8 pages; vpn 12 shares the anchor
        # window (distance 16) but is beyond the contiguity.
        mapping = MemoryMapping()
        mapping.map_run(0, FrameRange(10_000, 8))
        mapping.map_run(8, FrameRange(90_000, 8))  # break at page 8
        scheme = AnchorScheme(mapping, distance=16)
        scheme.access(0)                    # anchor@0 resident (cont 8)
        cycles = scheme.access(12)          # contiguity miss -> walk
        assert cycles == scheme.config.latency.page_walk
        # The regular entry (not a second anchor) was filled:
        scheme.l1.flush()
        assert scheme.access(12) == scheme.config.latency.l2_hit

    def test_row4_double_miss_contiguity_match_fills_anchor_only(
        self, two_chunk_mapping
    ):
        scheme = AnchorScheme(two_chunk_mapping, distance=16)
        scheme.access(20)                   # covered page: anchor@16 filled
        scheme.l1.flush()
        # The page's own 4 KiB entry must NOT be in the L2 — a re-access
        # resolves via the anchor (8 cycles), not a regular hit (7).
        assert scheme.access(20) == scheme.config.latency.coalesced_hit

    def test_row5_double_miss_no_match_fills_regular(self, two_chunk_mapping):
        # Head of chunk B: vpns 64..79 belong to anchor@64 which IS
        # contiguous there... use an unaligned-head mapping instead.
        mapping = MemoryMapping()
        mapping.map_run(5, FrameRange(77_000, 8))  # anchor@0 unmapped
        scheme = AnchorScheme(mapping, distance=16)
        assert scheme.access(6) == scheme.config.latency.page_walk
        scheme.l1.flush()
        assert scheme.access(6) == scheme.config.latency.l2_hit

    def test_anchor_not_crossed_between_chunks(self, two_chunk_mapping):
        scheme = AnchorScheme(two_chunk_mapping, distance=64)
        scheme.access(0)       # anchor@0, contiguity 64
        # vpn 70 is in chunk B; anchor@64 serves it with B's frames.
        scheme.access(70)
        assert scheme.translate(70) == 50_001 + 6

    def test_huge_path_when_distance_small(self):
        mapping = MemoryMapping()
        mapping.map_run(512, FrameRange(4096, 512))
        scheme = AnchorScheme(mapping, distance=8)
        assert scheme.directory.huge
        scheme.access(512)
        assert scheme.access(900) == 0      # L1 huge hit
        assert scheme.stats.walks == 1


class TestDynamicDistance:
    def test_dynamic_selects_from_histogram(self, two_chunk_mapping):
        scheme = AnchorScheme(two_chunk_mapping)  # distance=None
        assert scheme.dynamic
        assert scheme.distance >= 16

    def test_reselect_noop_when_mapping_static(self, two_chunk_mapping):
        scheme = AnchorScheme(two_chunk_mapping)
        distance, changed = scheme.reselect_distance()
        assert not changed
        assert distance == scheme.distance

    def test_static_never_reselects(self, two_chunk_mapping):
        scheme = AnchorScheme(two_chunk_mapping, distance=4)
        _, changed = scheme.reselect_distance()
        assert not changed and scheme.distance == 4

    def test_rebuild_after_mapping_change(self, two_chunk_mapping):
        scheme = AnchorScheme(two_chunk_mapping, distance=16)
        scheme.access(0)
        changed = MemoryMapping()
        changed.map_run(0, FrameRange(222_000, 32))
        scheme.rebuild(changed)
        assert scheme.access(0) == scheme.config.latency.page_walk
        assert scheme.translate(5) == 222_005

    def test_distance_change_flushes_and_logs(self, two_chunk_mapping):
        scheme = AnchorScheme(two_chunk_mapping)
        # Force a change by faking a different current distance.
        scheme.l2.set_distance(2)
        scheme.directory = scheme.directory.build(two_chunk_mapping, 2)
        scheme._dlog = 1
        distance, changed = scheme.reselect_distance()
        assert changed
        assert scheme.shootdowns.distance_changes
        assert scheme.distance == distance


class TestStats:
    def test_conservation_over_random_trace(self, two_chunk_mapping, make_trace):
        import numpy as np
        rng = np.random.default_rng(0)
        vpns = rng.integers(0, 96, 2000).tolist()
        scheme = AnchorScheme(two_chunk_mapping, distance=16)
        stats = simulate(scheme, make_trace(vpns)).stats
        stats.check_conservation()
        assert stats.accesses == 2000

    def test_anchor_beats_baseline_on_contiguous_mapping(
        self, two_chunk_mapping, tiny_machine, make_trace
    ):
        from repro.schemes.baseline import BaselineScheme
        import numpy as np
        rng = np.random.default_rng(1)
        vpns = rng.integers(0, 96, 3000).tolist()
        base = BaselineScheme(two_chunk_mapping, tiny_machine)
        anchor = AnchorScheme(two_chunk_mapping, tiny_machine, distance=16)
        simulate(base, make_trace(vpns))
        simulate(anchor, make_trace(vpns))
        assert anchor.stats.walks < base.stats.walks
