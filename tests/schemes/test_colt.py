"""Tests for the CoLT extension scheme."""

import pytest

from repro.mem.frames import FrameRange
from repro.schemes.colt_scheme import ColtScheme
from repro.sim.engine import simulate
from repro.vmos.mapping import MemoryMapping


@pytest.fixture
def runs_mapping():
    mapping = MemoryMapping()
    mapping.map_run(0, FrameRange(1000, 8))     # full line run
    mapping.map_run(16, FrameRange(2000, 3))    # partial run
    mapping.map_page(24, 9999)                  # singleton
    return mapping


class TestColt:
    def test_full_run_one_walk(self, runs_mapping):
        scheme = ColtScheme(runs_mapping)
        assert scheme.access(0) == 50
        for vpn in range(1, 8):
            assert scheme.access(vpn) == scheme.config.latency.coalesced_hit
        assert scheme.stats.walks == 1

    def test_partial_run(self, runs_mapping):
        scheme = ColtScheme(runs_mapping)
        scheme.access(16)
        assert scheme.access(18) == scheme.config.latency.coalesced_hit

    def test_singleton_charged_as_regular_hit(self, runs_mapping):
        scheme = ColtScheme(runs_mapping)
        scheme.access(24)
        # Evict from L1 by touching other lines... simpler: the entry is
        # in the L2 now; clear only L1 to force the L2 path.
        scheme.l1.flush()
        assert scheme.access(24) == scheme.config.latency.l2_hit
        assert scheme.stats.l2_small_hits == 1

    def test_run_confined_to_line(self, runs_mapping):
        scheme = ColtScheme(runs_mapping)
        scheme.access(16)
        scheme.l1.flush()
        # vpn 19 is unmapped; vpn 24 is a different line.
        assert scheme.access(24) == 50

    def test_conservation(self, runs_mapping, make_trace):
        scheme = ColtScheme(runs_mapping)
        trace = make_trace([0, 1, 2, 16, 17, 24, 0, 5, 18, 24] * 20)
        stats = simulate(scheme, trace).stats
        stats.check_conservation()
