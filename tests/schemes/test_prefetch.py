"""Tests for the distance-prefetching scheme."""

import numpy as np
import pytest

from repro.mem.frames import FrameRange
from repro.schemes.baseline import BaselineScheme
from repro.schemes.prefetch_scheme import DistancePredictor, PrefetchScheme
from repro.vmos.mapping import MemoryMapping


@pytest.fixture
def strided_mapping():
    mapping = MemoryMapping()
    mapping.map_run(0, FrameRange(10_000, 4096))
    return mapping


class TestDistancePredictor:
    def test_learns_constant_stride(self):
        predictor = DistancePredictor()
        predictor.observe_and_predict(0)
        predictor.observe_and_predict(8)    # learns nothing yet
        assert predictor.observe_and_predict(16) == 24

    def test_no_prediction_for_unseen_stride(self):
        predictor = DistancePredictor()
        predictor.observe_and_predict(0)
        assert predictor.observe_and_predict(100) is None

    def test_learns_alternating_pattern(self):
        predictor = DistancePredictor()
        for vpn in (0, 3, 10, 13, 20):
            prediction = predictor.observe_and_predict(vpn)
        # Strides alternate 3,7,3,7: after the 7-stride at vpn=20 the
        # table predicts a 3-stride next.
        assert prediction == 23

    def test_capacity_bounded(self):
        predictor = DistancePredictor(capacity=2)
        cursor = 0
        for stride in (3, 5, 7, 11, 13, 17):
            cursor += stride
            predictor.observe_and_predict(cursor)
        assert len(predictor._table) <= 2

    def test_flush(self):
        predictor = DistancePredictor()
        for vpn in (0, 8, 16):
            predictor.observe_and_predict(vpn)
        predictor.flush()
        assert predictor.observe_and_predict(24) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            DistancePredictor(capacity=0)


class TestPrefetchScheme:
    def test_strided_misses_halve_or_better(self, strided_mapping):
        # Stride-16 sweep: the baseline walks every page; the prefetcher
        # turns most walks into L2 hits after warmup.
        vpns = list(range(0, 4096, 16))
        base = BaselineScheme(strided_mapping)
        pref = PrefetchScheme(strided_mapping)
        for vpn in vpns:
            base.access(vpn)
            pref.access(vpn)
        assert pref.stats.walks < 0.55 * base.stats.walks
        assert pref.prefetch_accuracy > 0.8

    def test_random_access_not_helped_not_hurt_much(self, strided_mapping):
        rng = np.random.default_rng(1)
        vpns = rng.integers(0, 4096, 3000).tolist()
        base = BaselineScheme(strided_mapping)
        pref = PrefetchScheme(strided_mapping)
        for vpn in vpns:
            base.access(vpn)
            pref.access(vpn)
        assert pref.stats.walks <= base.stats.walks * 1.1

    def test_prefetch_off_map_edges_safe(self, strided_mapping):
        scheme = PrefetchScheme(strided_mapping)
        # Strides that predict beyond the mapping must not fault.
        for vpn in (4064, 4080, 4095):
            scheme.access(vpn)
        scheme.stats.check_conservation()

    def test_translation_correct(self, strided_mapping):
        scheme = PrefetchScheme(strided_mapping)
        for vpn in range(0, 4096, 97):
            scheme.access(vpn)
            assert scheme.translate(vpn) == 10_000 + vpn

    def test_flush_clears_predictor(self, strided_mapping):
        scheme = PrefetchScheme(strided_mapping)
        for vpn in range(0, 320, 16):
            scheme.access(vpn)
        scheme.flush()
        assert scheme.access(336) == 50  # cold again

    def test_registry(self, strided_mapping):
        from repro.schemes.registry import make_scheme, scheme_names
        scheme = make_scheme("prefetch", strided_mapping)
        assert scheme.name == "prefetch"
        assert "prefetch" in scheme_names(include_extras=True)
