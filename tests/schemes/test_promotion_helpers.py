"""Edge-case tests for the huge/giga promotion helpers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.frames import FrameRange
from repro.schemes.base import promote_giga_pages, promote_huge_pages
from repro.vmos.mapping import MemoryMapping


class TestPromoteHugePages:
    def test_empty_mapping(self):
        huge, small = promote_huge_pages(MemoryMapping())
        assert not huge and not small

    def test_exact_window(self):
        mapping = MemoryMapping()
        mapping.map_run(512, FrameRange(1024, 512))
        huge, small = promote_huge_pages(mapping)
        assert set(huge) == {512} and not small

    def test_one_page_short_of_a_window(self):
        mapping = MemoryMapping()
        mapping.map_run(512, FrameRange(1024, 511))
        huge, small = promote_huge_pages(mapping)
        assert not huge and len(small) == 511

    def test_protection_split_blocks_promotion(self):
        mapping = MemoryMapping()
        mapping.map_run(512, FrameRange(1024, 512))
        mapping.set_protection(700, 1, 0b01)
        huge, small = promote_huge_pages(mapping)
        assert not huge
        assert len(small) == 512

    def test_multiple_chunks_independent(self):
        mapping = MemoryMapping()
        mapping.map_run(512, FrameRange(1024, 512))       # promotable
        mapping.map_run(2048, FrameRange(9001, 512))      # phase off
        huge, small = promote_huge_pages(mapping)
        assert set(huge) == {512}
        assert len(small) == 512

    @given(st.integers(0, 600), st.integers(1, 1600))
    @settings(max_examples=40, deadline=None)
    def test_property_partition_is_exact(self, start, pages):
        mapping = MemoryMapping()
        mapping.map_run(start, FrameRange(4096 + start, pages))
        huge, small = promote_huge_pages(mapping)
        covered = len(small) + 512 * len(huge)
        assert covered == pages
        # Every page translates identically through the partition.
        for vpn, pfn in mapping.items():
            window = vpn & ~511
            if window in huge:
                assert huge[window] + (vpn - window) == pfn
            else:
                assert small[vpn] == pfn


class TestPromoteGigaPages:
    def test_empty_mapping(self):
        giga, rest = promote_giga_pages(MemoryMapping())
        assert not giga and not rest

    def test_partition_is_exact(self):
        giga_pages = 512 * 512
        mapping = MemoryMapping()
        mapping.map_run(0, FrameRange(0, giga_pages + 700))
        giga, rest = promote_giga_pages(mapping)
        assert set(giga) == {0}
        assert len(rest) == 700
