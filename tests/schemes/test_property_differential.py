"""Hypothesis differential testing over arbitrary random mappings.

The repository's central invariant, pushed much harder than the
scenario-based differential tests: for *any* mapping shape hypothesis
can dream up (random chunk sizes, phases, gaps, protections) and any
access order, every scheme's stateful access path must translate every
page to the ground-truth frame, conserve its statistics, and agree with
its own pure ``translate``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.frames import FrameRange
from repro.params import MachineConfig, TLBGeometry
from repro.schemes.registry import make_scheme, scheme_names
from repro.vmos.mapping import MemoryMapping

#: A tiny machine so hypothesis-sized traces still exercise evictions.
TINY = MachineConfig(
    l1_4k=TLBGeometry(8, 2),
    l1_2m=TLBGeometry(4, 2),
    l1_1g=TLBGeometry(4, 2),
    l2_1g=TLBGeometry(4, 2),
    l2=TLBGeometry(16, 4),
)


@st.composite
def random_mapping(draw):
    """A mapping of random chunks: sizes, virtual gaps, physical phases."""
    mapping = MemoryMapping()
    vpn = draw(st.integers(0, 2000))
    pfn_cursor = draw(st.integers(0, 5000))
    chunk_count = draw(st.integers(1, 10))
    for _ in range(chunk_count):
        size = draw(st.integers(1, 600))
        gap = draw(st.integers(1, 40))
        phase = draw(st.integers(0, 4))
        pfn_cursor += gap + phase
        mapping.map_run(vpn, FrameRange(pfn_cursor, size))
        # Occasional protection islands.
        if draw(st.booleans()) and size > 4:
            mapping.set_protection(vpn + size // 2, 1, 0b01)
        vpn += size + draw(st.integers(0, 30))
        pfn_cursor += size
    return mapping


@st.composite
def mapping_and_trace(draw):
    mapping = draw(random_mapping())
    vpns = [vpn for vpn, _ in mapping.items()]
    indices = draw(st.lists(st.integers(0, len(vpns) - 1),
                            min_size=1, max_size=120))
    return mapping, [vpns[i] for i in indices]


class TestRandomMappingDifferential:
    @pytest.mark.parametrize("scheme_name", scheme_names(include_extras=True))
    @given(data=mapping_and_trace())
    @settings(max_examples=25, deadline=None)
    def test_access_translations_always_correct(self, scheme_name, data):
        mapping, trace = data
        scheme = make_scheme(scheme_name, mapping, TINY)
        for vpn in trace:
            scheme.access(vpn)
            assert scheme.translate(vpn) == mapping.translate(vpn)
        scheme.stats.check_conservation()

    @given(data=mapping_and_trace(), distance_log=st.integers(1, 16))
    @settings(max_examples=30, deadline=None)
    def test_anchor_all_distances_always_correct(self, data, distance_log):
        mapping, trace = data
        scheme = make_scheme(
            "anchor-static", mapping, TINY, distance=1 << distance_log
        )
        for vpn in trace:
            scheme.access(vpn)
            assert scheme.translate(vpn) == mapping.translate(vpn)
        scheme.stats.check_conservation()

    @pytest.mark.parametrize(
        "scheme_name", ("colt", "cluster", "cluster2mb", "rmm", "prefetch"))
    @given(data=mapping_and_trace(), pwc=st.booleans(),
           fault_at=st.one_of(st.none(), st.integers(0, 119)))
    @settings(max_examples=20, deadline=None)
    def test_batched_matches_scalar(self, scheme_name, data, pwc, fault_at):
        """The newly batched schemes replay bit-identically: counters,
        per-set LRU state, PWC state — including the page-fault-mid-block
        fallback, which must fault at exactly the same reference."""
        import dataclasses

        from repro.errors import PageFaultError

        mapping, trace = data
        if fault_at is not None:
            hole = max(vpn for vpn, _ in mapping.items()) + 10_000
            trace = list(trace)
            trace.insert(min(fault_at, len(trace)), hole)
        machine = dataclasses.replace(TINY, pwc=True) if pwc else TINY
        outputs = []
        for mode in ("scalar", "batched"):
            scheme = make_scheme(scheme_name, mapping, machine)
            faulted = None
            try:
                if mode == "scalar":
                    scheme.sync_mapping()
                    for vpn in trace:
                        scheme.access(vpn)
                else:
                    scheme.sync_mapping()
                    scheme.access_block(np.asarray(trace, dtype=np.int64))
            except PageFaultError:
                faulted = scheme.stats.accesses
            state = {
                "stats": scheme.stats.snapshot(),
                "faulted": faulted,
                "l1": scheme.l1.state(),
            }
            for attr in ("l2", "regular"):
                obj = getattr(scheme, attr, None)
                if obj is not None and hasattr(obj, "state"):
                    state[attr] = obj.state()
            if hasattr(scheme, "clustered"):
                state["clustered"] = scheme.clustered.array.state()
            if hasattr(scheme, "range_tlb"):
                state["range"] = list(scheme.range_tlb._entries.items())
            if hasattr(scheme, "_prefetched"):
                state["prefetched"] = sorted(scheme._prefetched)
            if scheme.pwc is not None:
                state["pwc"] = (scheme.pwc.state(), scheme.pwc.hits,
                                scheme.pwc.probes)
            outputs.append(state)
        assert outputs[0] == outputs[1]
        assert (fault_at is None) == (outputs[0]["faulted"] is None)

    @pytest.mark.parametrize(
        "scheme_name", ("colt", "cluster", "cluster2mb", "base", "thp"))
    @given(data=mapping_and_trace(), pwc=st.booleans(),
           asid=st.integers(1, 7),
           cuts=st.lists(st.integers(1, 119), max_size=4, unique=True))
    @settings(max_examples=20, deadline=None)
    def test_batched_matches_scalar_tagged_chunked(
            self, scheme_name, data, pwc, asid, cuts):
        """Tag-safe schemes under a nonzero ASID, with the trace split at
        arbitrary chunk boundaries: every ``access_block`` call starts
        from whatever state the previous chunk left (snapshots, per-set
        LRU order, PWC levels) and must still replay bit-identically —
        tag-packed keys and all."""
        import dataclasses

        mapping, trace = data
        machine = dataclasses.replace(TINY, pwc=True) if pwc else TINY
        bounds = sorted(c for c in cuts if c < len(trace))
        chunks = np.split(np.asarray(trace, dtype=np.int64),
                          bounds) if trace else []
        outputs = []
        for mode in ("scalar", "batched"):
            scheme = make_scheme(scheme_name, mapping, machine)
            assert scheme.tag_safe_block
            scheme.set_asid(asid)
            scheme.sync_mapping()
            if mode == "scalar":
                for vpn in trace:
                    scheme.access(vpn)
            else:
                for chunk in chunks:
                    if chunk.size:
                        scheme.access_block(chunk)
            state = {
                "stats": scheme.stats.snapshot(),
                "l1": scheme.l1.state(),
            }
            for attr in ("l2", "regular"):
                obj = getattr(scheme, attr, None)
                if obj is not None and hasattr(obj, "state"):
                    state[attr] = obj.state()
            if hasattr(scheme, "clustered"):
                state["clustered"] = scheme.clustered.array.state()
            if scheme.pwc is not None:
                state["pwc"] = (scheme.pwc.state(), scheme.pwc.hits,
                                scheme.pwc.probes)
            outputs.append(state)
        assert outputs[0] == outputs[1]

    @given(data=mapping_and_trace())
    @settings(max_examples=20, deadline=None)
    def test_miss_counts_bounded_by_baseline_plus_conflicts(self, data):
        """No coalescing scheme can walk more than ~the baseline does on
        the same trace with generous slack for partition/index effects."""
        mapping, trace = data
        array = np.asarray(trace, dtype=np.int64)
        results = {}
        for name in ("base", "anchor-dyn"):
            scheme = make_scheme(name, mapping, TINY)
            for vpn in array.tolist():
                scheme.access(vpn)
            results[name] = scheme.stats.walks
        assert results["anchor-dyn"] <= results["base"] + len(trace) // 4 + 8
