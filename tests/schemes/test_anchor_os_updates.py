"""Tests for OS mapping updates flowing through the anchor scheme:
incremental page-table maintenance plus targeted TLB shootdowns."""

import pytest

from repro.errors import PageFaultError
from repro.mem.frames import FrameRange
from repro.schemes.anchor_scheme import AnchorScheme
from repro.vmos.mapping import MemoryMapping

PROT_R = 0b01


@pytest.fixture
def scheme():
    mapping = MemoryMapping()
    mapping.map_run(0, FrameRange(10_000, 64))
    return AnchorScheme(mapping, distance=16)


class TestUnmap:
    def test_unmap_invalidates_translation(self, scheme):
        scheme.access(20)
        assert scheme.unmap_page(20) == 10_020
        with pytest.raises(PageFaultError):
            scheme.translate(20)
        with pytest.raises(PageFaultError):
            scheme.access(20)

    def test_unmap_shoots_down_spanning_anchors(self, scheme):
        scheme.access(0)     # anchor@0 resident (cont 64)
        scheme.unmap_page(40)
        scheme.l1.flush()
        # A page left of the hole must NOT be served by the stale anchor
        # (it would still translate correctly, but the shootdown is what
        # the paper requires); the next access walks and refills with
        # the truncated contiguity.
        assert scheme.access(8) == scheme.config.latency.page_walk
        scheme.l1.flush()
        assert scheme.access(8) == scheme.config.latency.coalesced_hit
        # Pages beyond the truncated window now contiguity-miss.
        assert scheme.translate(41) == 10_041

    def test_unmap_records_shootdown(self, scheme):
        scheme.unmap_page(5)
        assert len(scheme.shootdowns.events) == 1

    def test_remaining_pages_translate(self, scheme):
        scheme.unmap_page(31)
        for vpn in (0, 30, 32, 63):
            assert scheme.translate(vpn) == 10_000 + vpn


class TestMap:
    def test_map_then_access(self, scheme):
        scheme.unmap_page(10)
        scheme.map_page(10, 77_000)
        assert scheme.translate(10) == 77_000
        assert scheme.access(10) == scheme.config.latency.page_walk

    def test_remap_merges_anchor_coverage(self, scheme):
        scheme.unmap_page(10)
        scheme.map_page(10, 10_010)  # restore the original frame
        directory = scheme.directory
        assert directory.anchor_contiguity[0] == 64


class TestProtect:
    def test_protect_splits_anchor_coverage(self, scheme):
        scheme.protect_page(20, PROT_R)
        directory = scheme.directory
        assert directory.anchor_contiguity[16] == 4   # stops at 20
        assert directory.anchor_contiguity[0] == 20
        # Translation is still correct everywhere.
        for vpn in (19, 20, 21):
            assert scheme.translate(vpn) == 10_000 + vpn

    def test_protected_page_not_anchor_served(self, scheme):
        scheme.protect_page(20, PROT_R)
        scheme.access(16)  # anchor@16 resident, cont 4
        scheme.l1.flush()
        assert scheme.access(20) == scheme.config.latency.page_walk
