"""Tests for the cluster and cluster-2MB schemes."""

import pytest

from repro.mem.frames import FrameRange
from repro.schemes.cluster_scheme import ClusterScheme
from repro.vmos.mapping import MemoryMapping


@pytest.fixture
def clustered_mapping():
    """Aligned 8-page groups: ideal for cluster-8 coalescing."""
    mapping = MemoryMapping()
    for group in range(16):
        mapping.map_run(group * 16, FrameRange(1024 + group * 64, 8))
    return mapping


class TestClusterScheme:
    def test_one_walk_serves_whole_cluster(self, clustered_mapping):
        scheme = ClusterScheme(clustered_mapping)
        assert scheme.access(0) == 50
        # The other 7 pages of the cluster hit the cluster TLB after
        # their L1 misses — cold L1 means first touch per page goes to L2.
        cycles = [scheme.access(vpn) for vpn in range(1, 8)]
        assert all(c == scheme.config.latency.coalesced_hit for c in cycles)
        assert scheme.stats.walks == 1
        assert scheme.stats.coalesced_hits == 7

    def test_singleton_goes_to_regular_side(self):
        mapping = MemoryMapping()
        mapping.map_page(5, 999)      # no coalescible neighbours
        mapping.map_page(6, 2000)     # different physical cluster
        scheme = ClusterScheme(mapping)
        scheme.access(5)
        assert scheme.clustered.array.occupancy == 0
        assert scheme.regular.occupancy == 1

    def test_name_variants(self, clustered_mapping):
        assert ClusterScheme(clustered_mapping).name == "cluster"
        assert ClusterScheme(clustered_mapping, use_thp=True).name == "cluster2mb"

    def test_cluster_plain_ignores_huge_mappings(self):
        mapping = MemoryMapping()
        mapping.map_run(512, FrameRange(4096, 512))
        plain = ClusterScheme(mapping, use_thp=False)
        with_thp = ClusterScheme(mapping, use_thp=True)
        plain.access(512)
        with_thp.access(512)
        # THP variant covers the whole window with one walk.
        assert with_thp.access(900) == 0
        # Plain variant needs more translation work for a far page.
        assert plain.access(900) > 0

    def test_2mb_variant_l2_huge_hits(self, tiny_machine):
        mapping = MemoryMapping()
        mapping.map_run(512, FrameRange(4096, 1024))
        scheme = ClusterScheme(mapping, tiny_machine, use_thp=True)
        scheme.access(512)
        scheme.access(1024)
        scheme.stats.check_conservation()
        assert scheme.stats.walks == 2

    def test_flush(self, clustered_mapping):
        scheme = ClusterScheme(clustered_mapping)
        scheme.access(0)
        scheme.flush()
        assert scheme.access(0) == 50
