"""Tests for the 4 KiB baseline scheme."""

import pytest

from repro.errors import PageFaultError
from repro.schemes.baseline import BaselineScheme
from repro.sim.engine import simulate


class TestBaseline:
    def test_cold_access_walks(self, contiguous_mapping):
        scheme = BaselineScheme(contiguous_mapping)
        cycles = scheme.access(0x1000)
        assert cycles == 50
        assert scheme.stats.walks == 1

    def test_l1_hit_is_free(self, contiguous_mapping):
        scheme = BaselineScheme(contiguous_mapping)
        scheme.access(0x1000)
        assert scheme.access(0x1000) == 0
        assert scheme.stats.l1_hits == 1

    def test_l2_hit_after_l1_eviction(self, contiguous_mapping, tiny_machine):
        scheme = BaselineScheme(contiguous_mapping, tiny_machine)
        # Touch enough pages mapping to the same L1 set to evict the
        # first from L1 while it survives in the larger L2.
        scheme.access(0x1000)
        for i in range(1, 5):
            scheme.access(0x1000 + i * 4)  # L1 has 4 sets in tiny config
        cycles = scheme.access(0x1000)
        assert cycles == tiny_machine.latency.l2_hit
        assert scheme.stats.l2_small_hits == 1

    def test_unmapped_faults(self, contiguous_mapping):
        scheme = BaselineScheme(contiguous_mapping)
        with pytest.raises(PageFaultError):
            scheme.access(0xDEAD000)
        with pytest.raises(PageFaultError):
            scheme.translate(0xDEAD000)

    def test_flush_forces_walks_again(self, contiguous_mapping):
        scheme = BaselineScheme(contiguous_mapping)
        scheme.access(0x1000)
        scheme.flush()
        assert scheme.access(0x1000) == 50

    def test_run_conserves_stats(self, contiguous_mapping, make_trace):
        scheme = BaselineScheme(contiguous_mapping)
        trace = make_trace([0x1000 + (i % 64) for i in range(500)])
        stats = simulate(scheme, trace).stats
        assert stats.accesses == 500
        stats.check_conservation()

    def test_run_is_removed(self, contiguous_mapping):
        # The deprecated run() shim was deleted; simulate() is the API.
        scheme = BaselineScheme(contiguous_mapping)
        assert not hasattr(scheme, "run")

    def test_capacity_thrash(self, contiguous_mapping, tiny_machine):
        # 256 pages round-robin over a 32-entry L2: every access misses.
        scheme = BaselineScheme(contiguous_mapping, tiny_machine)
        for _ in range(3):
            for vpn in range(0x1000, 0x1100):
                scheme.access(vpn)
        assert scheme.stats.walks > 256 * 2
