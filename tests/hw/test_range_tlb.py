"""Tests for the RMM range table and range TLB."""

import pytest

from repro.hw.range_tlb import RangeEntry, RangeTable, RangeTLB
from repro.mem.frames import FrameRange
from repro.vmos.mapping import MemoryMapping


@pytest.fixture
def mapping():
    m = MemoryMapping()
    m.map_run(0, FrameRange(1000, 16))
    m.map_run(32, FrameRange(5000, 64))
    m.map_run(200, FrameRange(9000, 8))
    return m


class TestRangeEntry:
    def test_translate(self):
        entry = RangeEntry(10, 5, 100)
        assert entry.translate(12) == 102
        assert entry.translate(9) is None
        assert entry.translate(15) is None


class TestRangeTable:
    def test_built_from_chunks(self, mapping):
        table = RangeTable(mapping)
        assert len(table) == 3

    def test_find(self, mapping):
        table = RangeTable(mapping)
        assert table.find(40).base_pfn == 5000
        assert table.find(0).base_pfn == 1000
        assert table.find(31) is None
        assert table.find(16) is None
        assert table.find(207).translate(207) == 9007

    def test_find_before_first(self, mapping):
        table = RangeTable(MemoryMapping())
        assert table.find(5) is None


class TestRangeTLB:
    def test_hit_and_miss(self):
        tlb = RangeTLB(capacity=4)
        tlb.insert(RangeEntry(0, 16, 1000))
        assert tlb.lookup(7) == 1007
        assert tlb.lookup(16) is None

    def test_lru_over_ranges(self):
        tlb = RangeTLB(capacity=2)
        tlb.insert(RangeEntry(0, 4, 100))
        tlb.insert(RangeEntry(10, 4, 200))
        tlb.lookup(1)                       # range@0 is MRU
        tlb.insert(RangeEntry(20, 4, 300))  # evicts range@10
        assert tlb.lookup(11) is None
        assert tlb.lookup(1) == 101
        assert tlb.lookup(21) == 301

    def test_reinsert_same_range(self):
        tlb = RangeTLB(capacity=2)
        tlb.insert(RangeEntry(0, 4, 100))
        tlb.insert(RangeEntry(0, 4, 100))
        assert tlb.occupancy == 1

    def test_default_capacity_is_32(self):
        assert RangeTLB().capacity == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            RangeTLB(capacity=0)

    def test_flush(self):
        tlb = RangeTLB()
        tlb.insert(RangeEntry(0, 4, 100))
        tlb.flush()
        assert tlb.occupancy == 0
