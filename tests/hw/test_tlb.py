"""Tests for the generic TLB arrays, including an LRU reference model."""

from collections import OrderedDict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.tlb import FullyAssociativeTLB, SetAssociativeTLB


class TestSetAssociative:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeTLB(10, 3)       # not a multiple
        with pytest.raises(ValueError):
            SetAssociativeTLB(24, 4)       # 6 sets, not pow2
        with pytest.raises(ValueError):
            SetAssociativeTLB(0, 1)

    def test_geometry_of_table3(self):
        for entries, ways in ((1024, 8), (768, 6), (320, 5), (64, 4), (32, 4)):
            tlb = SetAssociativeTLB(entries, ways)
            assert tlb.sets * tlb.ways == entries

    def test_miss_then_hit(self):
        tlb = SetAssociativeTLB(8, 2)
        assert tlb.lookup(0, 42) is None
        tlb.insert(0, 42, "v")
        assert tlb.lookup(0, 42) == "v"

    def test_index_masked(self):
        tlb = SetAssociativeTLB(8, 2)  # 4 sets
        tlb.insert(5, 1, "x")
        assert tlb.lookup(1, 1) == "x"  # 5 & 3 == 1

    def test_capacity_per_set(self):
        tlb = SetAssociativeTLB(8, 2)
        tlb.insert(0, 1, "a")
        tlb.insert(0, 2, "b")
        tlb.insert(0, 3, "c")  # evicts LRU (1)
        assert tlb.lookup(0, 1) is None
        assert tlb.lookup(0, 2) == "b"
        assert tlb.lookup(0, 3) == "c"

    def test_hit_refreshes_lru(self):
        tlb = SetAssociativeTLB(8, 2)
        tlb.insert(0, 1, "a")
        tlb.insert(0, 2, "b")
        tlb.lookup(0, 1)        # 1 becomes MRU
        tlb.insert(0, 3, "c")   # evicts 2
        assert tlb.lookup(0, 1) == "a"
        assert tlb.lookup(0, 2) is None

    def test_reinsert_updates_value(self):
        tlb = SetAssociativeTLB(8, 2)
        tlb.insert(0, 1, "a")
        tlb.insert(0, 1, "a2")
        assert tlb.lookup(0, 1) == "a2"
        assert tlb.occupancy == 1

    def test_invalidate(self):
        tlb = SetAssociativeTLB(8, 2)
        tlb.insert(0, 1, "a")
        assert tlb.invalidate(0, 1)
        assert not tlb.invalidate(0, 1)
        assert tlb.lookup(0, 1) is None

    def test_flush(self):
        tlb = SetAssociativeTLB(8, 2)
        for key in range(8):
            tlb.insert(key, key, key)
        tlb.flush()
        assert tlb.occupancy == 0

    def test_sets_are_independent(self):
        tlb = SetAssociativeTLB(8, 2)
        for key in (0, 4, 8, 12):  # all map to set 0 of 4 sets
            tlb.insert(key, key, key)
        tlb.insert(1, 1, 1)
        assert tlb.lookup(1, 1) == 1
        assert tlb.occupancy == 3

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 30)),
                    min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_property_matches_reference_lru(self, ops):
        """Differential test against a per-set OrderedDict LRU model."""
        tlb = SetAssociativeTLB(8, 2)
        model = [OrderedDict() for _ in range(4)]
        for is_insert, key in ops:
            index = key & 3
            if is_insert:
                tlb.insert(index, key, key * 10)
                bucket = model[index]
                if key in bucket:
                    del bucket[key]
                elif len(bucket) >= 2:
                    bucket.popitem(last=False)
                bucket[key] = key * 10
            else:
                got = tlb.lookup(index, key)
                bucket = model[index]
                expected = bucket.get(key)
                if expected is not None:
                    bucket.move_to_end(key)
                assert got == expected


class TestFullyAssociative:
    def test_validation(self):
        with pytest.raises(ValueError):
            FullyAssociativeTLB(0)

    def test_lru_eviction(self):
        tlb = FullyAssociativeTLB(2)
        tlb.insert(1, "a")
        tlb.insert(2, "b")
        tlb.lookup(1)
        tlb.insert(3, "c")
        assert tlb.lookup(2) is None
        assert tlb.lookup(1) == "a"
        assert 3 in tlb

    def test_flush_and_occupancy(self):
        tlb = FullyAssociativeTLB(4)
        tlb.insert(1, "a")
        assert tlb.occupancy == 1
        tlb.flush()
        assert tlb.occupancy == 0

    def test_values(self):
        tlb = FullyAssociativeTLB(4)
        tlb.insert(1, "a")
        tlb.insert(2, "b")
        assert set(tlb.values()) == {"a", "b"}
