"""Tests for the page walker over a coverage plan."""

import pytest

from repro.errors import PageFaultError
from repro.hw.walker import PageWalker
from repro.mem.frames import FrameRange
from repro.vmos.anchor import AnchorDirectory
from repro.vmos.mapping import MemoryMapping


@pytest.fixture
def directory():
    mapping = MemoryMapping()
    mapping.map_run(0, FrameRange(10_000, 64))       # anchored small run
    mapping.map_run(512, FrameRange(2048, 512))      # 2 MiB promotable
    return AnchorDirectory.build(mapping, 16)


class TestWalker:
    def test_small_walk(self, directory):
        walker = PageWalker(directory)
        outcome = walker.walk(5)
        assert outcome.pfn == 10_005
        assert not outcome.huge
        assert outcome.memory_accesses == 4
        assert walker.walks == 1

    def test_huge_walk(self, directory):
        outcome = PageWalker(directory).walk(700)
        assert outcome.huge
        assert outcome.pfn == 2048 + (700 - 512)
        assert outcome.leaf_vpn == 512
        assert outcome.memory_accesses == 3

    def test_fetch_anchor(self, directory):
        outcome = PageWalker(directory).walk(21, fetch_anchor=True)
        assert outcome.anchor_vpn == 16
        assert outcome.anchor_pfn == 10_016
        assert outcome.anchor_contiguity == 48

    def test_fetch_anchor_absent(self, directory):
        # vpn 5's anchor (0) exists; use a mapping without an anchored
        # leaf by walking the huge region: anchor fields are empty.
        outcome = PageWalker(directory).walk(700, fetch_anchor=True)
        assert outcome.anchor_vpn is None

    def test_unmapped_faults(self, directory):
        with pytest.raises(PageFaultError):
            PageWalker(directory).walk(4096)

    def test_radix_backend(self, directory):
        table = directory.populate_page_table()
        walker = PageWalker(directory, table)
        assert walker.walk_radix(5).pfn == 10_005

    def test_radix_backend_missing(self, directory):
        with pytest.raises(ValueError):
            PageWalker(directory).walk_radix(5)
