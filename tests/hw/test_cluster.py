"""Tests for cluster-8 and CoLT coalescing logic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.cluster import (
    ClusterTLB,
    build_cluster_entry,
    build_colt_entry,
)
from repro.params import CLUSTER_CLUSTERED


class TestBuildClusterEntry:
    def test_full_cluster(self):
        # 8 aligned pages mapping into one aligned physical cluster.
        small = {vpn: 800 + vpn for vpn in range(16, 24)}
        entry = build_cluster_entry(small, 18)
        assert entry.coverage == 8
        for vpn in range(16, 24):
            assert entry.translate(vpn) == 800 + vpn

    def test_permuted_within_cluster(self):
        # Pages scrambled inside one physical cluster still coalesce.
        small = {16 + i: 800 + (7 - i) for i in range(8)}
        entry = build_cluster_entry(small, 16)
        assert entry.coverage == 8
        assert entry.translate(16) == 807
        assert entry.translate(23) == 800

    def test_pages_outside_physical_cluster_excluded(self):
        small = {16: 800, 17: 801, 18: 4000, 19: 803}
        entry = build_cluster_entry(small, 16)
        assert entry.coverage == 3
        assert entry.translate(18) is None
        assert entry.translate(19) == 803

    def test_holes_excluded(self):
        small = {16: 800, 19: 803}
        entry = build_cluster_entry(small, 16)
        assert entry.coverage == 2
        assert entry.translate(17) is None

    def test_singleton(self):
        small = {21: 4093}
        entry = build_cluster_entry(small, 21)
        assert entry.coverage == 1

    @given(st.dictionaries(st.integers(0, 7), st.integers(0, 63),
                           min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_property_translations_match_map(self, layout):
        small = {32 + slot: 256 + pfn for slot, pfn in layout.items()}
        anchor_vpn = sorted(small)[0]
        entry = build_cluster_entry(small, anchor_vpn)
        for vpn in range(32, 40):
            translated = entry.translate(vpn)
            if translated is not None:
                assert small[vpn] == translated


class TestBuildColtEntry:
    def test_full_line_run(self):
        small = {vpn: 800 + vpn for vpn in range(16, 24)}
        entry = build_colt_entry(small, 20)
        assert (entry.start_vpn, entry.pages) == (16, 8)
        assert entry.translate(23) == 823

    def test_run_confined_to_cache_line(self):
        small = {vpn: 800 + vpn for vpn in range(12, 28)}
        entry = build_colt_entry(small, 17)
        assert entry.start_vpn == 16
        assert entry.pages == 8

    def test_partial_run(self):
        small = {16: 100, 17: 101, 18: 500, 19: 501}
        entry = build_colt_entry(small, 16)
        assert entry.pages == 2
        assert entry.translate(18) is None

    def test_singleton_run(self):
        small = {18: 4000}
        entry = build_colt_entry(small, 18)
        assert entry.pages == 1


class TestClusterTLBStructure:
    def test_lookup_hit_and_miss(self):
        tlb = ClusterTLB(CLUSTER_CLUSTERED)
        small = {vpn: 800 + vpn for vpn in range(16, 24)}
        tlb.insert(build_cluster_entry(small, 16))
        assert tlb.lookup(20) == 820
        assert tlb.lookup(24) is None  # different cluster

    def test_uncovered_slot_misses(self):
        tlb = ClusterTLB(CLUSTER_CLUSTERED)
        tlb.insert(build_cluster_entry({16: 800, 17: 801}, 16))
        assert tlb.lookup(18) is None

    def test_flush(self):
        tlb = ClusterTLB(CLUSTER_CLUSTERED)
        tlb.insert(build_cluster_entry({16: 800}, 16))
        tlb.flush()
        assert tlb.lookup(16) is None
