"""Tests for anchor lookups on the shared L2 (paper Fig. 5/6, Table 2)."""

import pytest

from repro.hw.anchor_tlb import AnchorL2TLB
from repro.params import DEFAULT_MACHINE


@pytest.fixture
def l2():
    return AnchorL2TLB(DEFAULT_MACHINE, distance=16)


class TestRegularEntries:
    def test_small_roundtrip(self, l2):
        assert l2.lookup_small(5) is None
        l2.fill_small(5, 99)
        assert l2.lookup_small(5) == 99

    def test_huge_roundtrip(self, l2):
        l2.fill_huge(3, 1536)
        assert l2.lookup_huge(3) == 1536

    def test_kinds_do_not_alias(self, l2):
        l2.fill_small(8, 1)
        l2.fill_huge(8, 2)
        l2.fill_anchor(0, 3, 16)   # avpn 0 governs vpn 8 at distance 16
        assert l2.lookup_small(8) == 1
        assert l2.lookup_huge(8) == 2
        assert l2.lookup_anchor(8) == 3 + 8


class TestAnchorLookup:
    def test_anchor_hit_arithmetic(self, l2):
        # Anchor at avpn 32 with APPN 4096, contiguity 10.
        l2.fill_anchor(32, 4096, 10)
        assert l2.lookup_anchor(32) == 4096
        assert l2.lookup_anchor(37) == 4101
        assert l2.lookup_anchor(41) == 4105

    def test_contiguity_miss(self, l2):
        """Table 2 row 3: anchor resident but VPN outside its block."""
        l2.fill_anchor(32, 4096, 10)
        assert l2.lookup_anchor(42) is None
        assert l2.lookup_anchor(47) is None

    def test_absent_anchor_misses(self, l2):
        assert l2.lookup_anchor(100) is None

    def test_lookup_uses_own_window_only(self, l2):
        # VPN 50's anchor is 48, not 32 — a resident anchor at 32 with
        # huge contiguity must not serve it (the HW only probes AVPN).
        l2.fill_anchor(32, 4096, 16)
        assert l2.lookup_anchor(50) is None

    def test_index_spreads_consecutive_anchors(self):
        """Fig. 6: consecutive AVPNs map to consecutive sets."""
        l2 = AnchorL2TLB(DEFAULT_MACHINE, distance=1024)
        sets = l2.array.sets
        # Insert more anchors than one set could hold; with the d-shifted
        # index they spread and all stay resident.
        for i in range(l2.array.ways + 4):
            l2.fill_anchor(i * 1024, i * 10_000, 1024)
        hits = sum(
            l2.lookup_anchor(i * 1024) is not None
            for i in range(l2.array.ways + 4)
        )
        assert hits == l2.array.ways + 4
        assert sets >= 12  # sanity: spreading was possible

    def test_distance_change_flushes(self, l2):
        l2.fill_anchor(32, 4096, 16)
        l2.fill_small(5, 1)
        l2.set_distance(64)
        assert l2.lookup_small(5) is None
        assert l2.lookup_anchor(32) is None
        assert l2.distance == 64

    def test_invalid_distance(self, l2):
        with pytest.raises(ValueError):
            l2.set_distance(3)
        with pytest.raises(ValueError):
            l2.set_distance(0)

    def test_capacity_shared_between_kinds(self):
        l2 = AnchorL2TLB(DEFAULT_MACHINE, distance=2)
        # Fill one set (index 0 of 128) with 8 small entries keyed to
        # collide, then an anchor keyed into the same set evicts LRU.
        for i in range(8):
            l2.fill_small(i * 128, i)
        l2.fill_anchor(0, 999, 2)
        resident = sum(l2.lookup_small(i * 128) is not None for i in range(8))
        assert resident == 7
        assert l2.lookup_anchor(0) == 999
