"""Tests for the split L1 TLB."""

from repro.hw.l1 import L1TLB
from repro.params import DEFAULT_MACHINE


class TestL1:
    def test_small_fill_and_lookup(self):
        l1 = L1TLB(DEFAULT_MACHINE)
        assert l1.lookup_small(100) is None
        l1.fill_small(100, 7)
        assert l1.lookup_small(100) == 7

    def test_huge_side_independent(self):
        l1 = L1TLB(DEFAULT_MACHINE)
        l1.fill_small(100, 7)
        assert l1.lookup_huge(100) is None
        l1.fill_huge(100, 512)
        assert l1.lookup_huge(100) == 512
        assert l1.lookup_small(100) == 7

    def test_geometry_matches_table3(self):
        l1 = L1TLB(DEFAULT_MACHINE)
        assert l1.small.entries == 64 and l1.small.ways == 4
        assert l1.huge.entries == 32 and l1.huge.ways == 4

    def test_capacity_eviction(self):
        l1 = L1TLB(DEFAULT_MACHINE)
        # 16 sets x 4 ways on the small side: overfill one set.
        for i in range(5):
            l1.fill_small(i * 16, i)
        assert l1.lookup_small(0) is None  # LRU victim
        assert l1.lookup_small(64) == 4

    def test_flush(self):
        l1 = L1TLB(DEFAULT_MACHINE)
        l1.fill_small(1, 1)
        l1.fill_huge(1, 1)
        l1.flush()
        assert l1.lookup_small(1) is None
        assert l1.lookup_huge(1) is None
