"""Tests for the page-walk caches (MMU caches)."""

import numpy as np
import pytest

from repro.hw.pwc import PageWalkCache, PWCGeometry


class TestPWC:
    def test_cold_walk_costs_four_accesses(self):
        pwc = PageWalkCache()
        assert pwc.accesses_for(0x12345) == 4

    def test_cold_huge_walk_costs_three(self):
        pwc = PageWalkCache()
        assert pwc.accesses_for(0x12345, huge=True) == 3

    def test_repeat_walk_hits_pd_cache(self):
        pwc = PageWalkCache()
        pwc.accesses_for(0x1000)
        assert pwc.accesses_for(0x1001) == 1  # same PT page

    def test_neighbouring_pd_hits_pdpt(self):
        pwc = PageWalkCache()
        pwc.accesses_for(0)
        # Same 1 GiB region, different 2 MiB window: PDPT hit.
        assert pwc.accesses_for(1 << 9) == 2

    def test_neighbouring_pdpt_hits_pml4(self):
        pwc = PageWalkCache()
        pwc.accesses_for(0)
        assert pwc.accesses_for(1 << 18) == 3

    def test_huge_walk_with_pdpt_hit(self):
        pwc = PageWalkCache()
        pwc.accesses_for(0)
        assert pwc.accesses_for(1 << 9, huge=True) == 1

    def test_huge_walk_never_uses_pd_cache(self):
        pwc = PageWalkCache()
        pwc.accesses_for(0)  # fills the PD cache for window 0
        # A huge walk in the same window must still read the PD leaf.
        assert pwc.accesses_for(5, huge=True) == 1  # via PDPT, not PD

    def test_capacity_eviction(self):
        pwc = PageWalkCache(PWCGeometry(pd_entries=2, pdpt_entries=1,
                                        pml4_entries=1))
        pwc.accesses_for(0 << 9)
        pwc.accesses_for(1 << 9)
        pwc.accesses_for(2 << 9)   # evicts PD entry for window 0
        assert pwc.accesses_for(0) > 1

    def test_hit_rate(self):
        pwc = PageWalkCache()
        assert pwc.hit_rate == 0.0
        pwc.accesses_for(0)
        pwc.accesses_for(1)
        assert pwc.hit_rate == pytest.approx(0.5)

    def test_flush(self):
        pwc = PageWalkCache()
        pwc.accesses_for(0)
        pwc.flush()
        assert pwc.accesses_for(1) == 4


class TestPWCBatch:
    """``accesses_for_block`` must be bit-identical to the scalar model."""

    @staticmethod
    def _random_walks(seed, n=400):
        rng = np.random.default_rng(seed)
        # Cluster the stream so every level sees hits AND misses.
        base = rng.integers(0, 1 << 22, size=8)
        vpns = base[rng.integers(0, base.size, size=n)] + rng.integers(
            0, 1 << 11, size=n)
        huge = rng.random(n) < 0.3
        return vpns.astype(np.int64), huge

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_scalar(self, seed):
        vpns, huge = self._random_walks(seed)
        scalar = PageWalkCache()
        expected = np.asarray(
            [scalar.accesses_for(int(v), huge=bool(h))
             for v, h in zip(vpns, huge)], dtype=np.int64)
        batched = PageWalkCache()
        got = batched.accesses_for_block(vpns, huge)
        assert np.array_equal(got, expected)
        assert (batched.hits, batched.probes) == (scalar.hits, scalar.probes)
        assert batched.state() == scalar.state()

    def test_huge_none_means_all_small(self):
        vpns, _ = self._random_walks(11, n=150)
        scalar = PageWalkCache()
        expected = [scalar.accesses_for(int(v)) for v in vpns]
        batched = PageWalkCache()
        got = batched.accesses_for_block(vpns)
        assert got.tolist() == expected
        assert batched.state() == scalar.state()

    def test_warm_state_carries_across_blocks(self):
        vpns, huge = self._random_walks(3)
        scalar = PageWalkCache()
        expected = [scalar.accesses_for(int(v), huge=bool(h))
                    for v, h in zip(vpns, huge)]
        batched = PageWalkCache()
        got = np.concatenate([
            batched.accesses_for_block(vpns[:137], huge[:137]),
            batched.accesses_for_block(vpns[137:], huge[137:]),
        ])
        assert got.tolist() == expected
        assert batched.state() == scalar.state()

    def test_empty_block(self):
        pwc = PageWalkCache()
        assert pwc.accesses_for_block(np.zeros(0, dtype=np.int64)).size == 0
        assert pwc.probes == 0

    def test_capacity_eviction_in_batch(self):
        geom = PWCGeometry(pd_entries=2, pdpt_entries=1, pml4_entries=1)
        vpns, huge = self._random_walks(7, n=200)
        scalar = PageWalkCache(geom)
        expected = [scalar.accesses_for(int(v), huge=bool(h))
                    for v, h in zip(vpns, huge)]
        batched = PageWalkCache(geom)
        assert batched.accesses_for_block(vpns, huge).tolist() == expected


class TestPWCInSchemes:
    def test_disabled_by_default(self, contiguous_mapping):
        from repro.schemes.baseline import BaselineScheme
        scheme = BaselineScheme(contiguous_mapping)
        assert scheme.pwc is None
        assert scheme.access(0x1000) == 50
        assert scheme.stats.walk_pt_accesses == 0

    def test_enabled_reduces_walk_cost(self, contiguous_mapping):
        from repro.params import MachineConfig
        from repro.schemes.baseline import BaselineScheme
        config = MachineConfig(pwc=True)
        scheme = BaselineScheme(contiguous_mapping, config)
        first = scheme.access(0x1000)     # cold: 4 accesses
        second = scheme.access(0x1001)    # PD cached: 1 access
        assert first == 4 * config.latency.walk_step
        assert second == 1 * config.latency.walk_step
        assert scheme.stats.walk_pt_accesses == 5
        assert scheme.stats.cycles_walk == 5 * config.latency.walk_step

    def test_translation_unaffected(self, medium_mapping):
        from repro.params import MachineConfig
        from repro.schemes import make_scheme, scheme_names
        config = MachineConfig(pwc=True)
        for name in scheme_names(include_extras=True):
            scheme = make_scheme(name, medium_mapping, config)
            for vpn, pfn in list(medium_mapping.items())[::17]:
                scheme.access(vpn)
                assert scheme.translate(vpn) == pfn
            scheme.stats.check_conservation()
