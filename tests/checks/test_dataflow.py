"""The cross-module dataflow layer, exercised over its own fixture tree.

``dataflowroot`` is a three-file miniature of the package layout: a
scheme hierarchy under ``schemes/`` and a batched resolver in
``sim/lru.py``, with every write shape the extractor must classify.
"""

from pathlib import Path

import pytest

from repro.checks.base import FileContext, ProjectContext
from repro.checks.dataflow import ProjectDataflow, get_dataflow

FIXTURES = Path(__file__).parent / "fixtures"


def flow_for(root_name):
    root = FIXTURES / root_name
    project = ProjectContext(root)
    project.files = [
        FileContext(path, root, path.read_text())
        for path in sorted(root.rglob("*.py"))
    ]
    return project, get_dataflow(project)


@pytest.fixture(scope="module")
def flow():
    _, flow = flow_for("dataflowroot")
    return flow


class TestSymbolTable:
    def test_modules_keyed_by_scoped_path(self, flow):
        assert set(flow.modules) == {
            "schemes/base.py", "schemes/derived.py", "sim/lru.py"}
        assert flow.module_for("sim.lru") is flow.modules["sim/lru.py"]
        assert flow.module_for("schemes.base") is flow.modules[
            "schemes/base.py"]
        assert flow.module_for("no.such.module") is None

    def test_chain_crosses_modules(self, flow):
        chain = [c.name for c in flow.chain("DerivedScheme")]
        assert chain == ["DerivedScheme", "BaseScheme"]
        assert flow.chain_reaches("DerivedScheme", "BaseScheme")
        assert not flow.chain_reaches("BaseScheme", "DerivedScheme")

    def test_method_resolution_nearest_definition_wins(self, flow):
        resolve = flow.resolve_method("DerivedScheme", "_resolve")
        assert resolve.qualname == "DerivedScheme._resolve"
        inherited = flow.resolve_method("DerivedScheme", "access_block")
        assert inherited.qualname == "BaseScheme.access_block"
        assert inherited.module == "schemes/base.py"
        assert flow.resolve_method("DerivedScheme", "no_such") is None

    def test_function_resolution_through_imports(self, flow):
        base = flow.modules["schemes/base.py"]
        fn = flow.resolve_function(base, "simulate_block")
        assert fn is not None and fn.module == "sim/lru.py"


class TestCallGraph:
    def test_method_tree_reaches_sim_lru(self, flow):
        tree = flow.method_tree("DerivedScheme", "access_block")
        names = {(fn.module, fn.qualname) for fn in tree}
        # access_block (base) -> _resolve (derived override) ->
        # super()._resolve (base) -> simulate_block (sim/lru.py).
        assert ("schemes/base.py", "BaseScheme.access_block") in names
        assert ("schemes/derived.py", "DerivedScheme._resolve") in names
        assert ("schemes/base.py", "BaseScheme._resolve") in names
        assert ("sim/lru.py", "simulate_block") in names

    def test_rebindable_globals(self, flow):
        base = flow.modules["schemes/base.py"]
        assert base.rebindable_globals == {"_TRACE_SINK"}
        sink = base.functions["configure_sink"]
        assert sink.global_writes == {"_TRACE_SINK"}


class TestWriteSets:
    def test_every_write_shape_classified(self, flow):
        resolve = flow.resolve_method("DerivedScheme", "_resolve")
        kinds = {(w.attr, w.kind) for w in resolve.attr_writes}
        assert ("hits", "mutate") in kinds       # augmented assign
        assert ("table", "mutate") in kinds      # slice store
        assert ("freq", "mutate") in kinds       # np.copyto on self
        assert ("log", "mutate") in kinds        # in-place method call
        assert ("cache", "bind") in kinds        # plain rebind
        assert ("hits", "bind") not in kinds

    def test_init_binds(self, flow):
        init = flow.resolve_method("DerivedScheme", "__init__")
        binds = {w.attr for w in init.attr_writes if w.kind == "bind"}
        assert binds == {"table", "freq", "log"}
        assert flow.writes_in([init], kind="bind") == binds


def test_get_dataflow_cached_per_project():
    project, flow = flow_for("dataflowroot")
    assert get_dataflow(project) is flow
    assert isinstance(flow, ProjectDataflow)
