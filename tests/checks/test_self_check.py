"""The repo gates on itself: the live ``src/`` tree stays lint-clean.

This is the in-tree twin of the CI ``static-analysis`` job — a
violation anywhere in ``src/repro`` fails tier-1 locally, with the
finding text in the assertion message, before CI ever sees it.
"""

from pathlib import Path

from repro.checks.runner import run_checks

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"


def test_src_tree_is_clean_with_empty_baseline():
    result = run_checks([SRC], root=REPO_ROOT, repo_checks=False)
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.findings == [], f"src/ has lint findings:\n{rendered}"
    assert result.exit_code == 0
    # The whole package was actually scanned, not an empty glob.
    assert result.files_scanned > 80


def test_dataflow_rules_clean_on_live_src_with_empty_baseline():
    """The PR's acceptance bar, pinned explicitly: the three dataflow
    rules report zero findings on the live tree with no baseline."""
    result = run_checks(
        [SRC], root=REPO_ROOT,
        rules=["fork-safety", "tag-safety", "shared-aliasing"],
        baseline_path=None, repo_checks=False)
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.findings == [], f"dataflow findings:\n{rendered}"
    assert result.exit_code == 0


def test_no_tracked_bytecode():
    from repro.checks.rules import tracked_bytecode_findings
    findings = tracked_bytecode_findings(REPO_ROOT)
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"tracked bytecode:\n{rendered}"


def test_seeded_violation_is_caught():
    """The acceptance scenario: a bare default_rng in sim/ must fail."""
    scratch = SRC / "sim" / "_lint_canary.py"
    assert not scratch.exists()
    scratch.write_text(
        "import numpy as np\nRNG = np.random.default_rng(0)\n")
    try:
        result = run_checks([SRC], root=REPO_ROOT, repo_checks=False)
        assert result.exit_code == 1
        assert any(f.rule == "determinism"
                   and f.path.endswith("sim/_lint_canary.py")
                   for f in result.findings)
    finally:
        scratch.unlink()
