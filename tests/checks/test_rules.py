"""Per-rule positive and negative cases over the fixture trees.

Each fixture root mimics the package layout the rule scopes to
(``util/rng.py``, ``hw/``, ``schemes/``...), is parsed but never
imported, and contains both violations and clean counterparts.
"""

from pathlib import Path

import pytest

from repro.checks.runner import run_checks

FIXTURES = Path(__file__).parent / "fixtures"


def findings_in(root_name, rules=None):
    root = FIXTURES / root_name
    result = run_checks([root], root=root, rules=rules, repo_checks=False)
    return result.findings


def by_file(findings):
    grouped = {}
    for f in findings:
        grouped.setdefault(f.path, []).append(f)
    return grouped


class TestDeterminism:
    @pytest.fixture(scope="class")
    def findings(self):
        return findings_in("detroot", rules=["determinism"])

    def test_flags_each_violation_kind(self, findings):
        messages = "\n".join(
            f.message for f in findings if f.path == "bad_det.py")
        assert "'random' module" in messages
        assert "np.random.default_rng" in messages
        assert "np.random.seed" in messages
        assert "time.time" in messages
        assert "datetime.now" in messages
        assert "hash()" in messages
        assert "os.listdir" in messages

    def test_clean_file_and_rng_exemption(self, findings):
        files = by_file(findings)
        assert "good_det.py" not in files  # monotonic clocks, sorted()
        assert "util/rng.py" not in files  # the sanctioned entropy source

    def test_findings_carry_hints(self, findings):
        assert all(f.hint for f in findings)


class TestDtypeHygiene:
    @pytest.fixture(scope="class")
    def findings(self):
        return findings_in("dtyperoot", rules=["dtype-hygiene"])

    def test_flags_bare_constructors_in_hot_paths(self, findings):
        files = by_file(findings)
        assert len(files["hw/bad.py"]) == 4  # zeros/array/full/arange
        assert len(files["sim/lru.py"]) == 1

    def test_explicit_dtype_passes(self, findings):
        assert "hw/good.py" not in by_file(findings)

    def test_out_of_scope_module_not_flagged(self, findings):
        assert "experiments/free.py" not in by_file(findings)


class TestSchemeContract:
    @pytest.fixture(scope="class")
    def findings(self):
        return findings_in("schemeroot", rules=["scheme-contract"])

    def test_hollow_scheme_missing_hooks(self, findings):
        messages = "\n".join(
            f.message for f in findings if "HollowScheme" in f.message)
        assert "'access'" in messages
        assert "'_translate'" in messages
        assert "'name'" in messages

    def test_update_hook_without_flush(self, findings):
        assert any("neither flushes nor delegates" in f.message
                   for f in findings)

    def test_unguarded_mapping_cache(self, findings):
        assert any("caches mapping-derived state" in f.message
                   and "'refresh'" in f.message for f in findings)

    def test_access_block_without_tag_declaration(self, findings):
        assert any("tag_safe_block" in f.message
                   and "LeakyTagScheme" in f.message for f in findings)

    def test_access_block_signature_deviation(self, findings):
        assert any("(self, vpns) signature" in f.message
                   and "LeakyTagScheme" in f.message for f in findings)

    def test_clean_scheme_and_non_scheme_pass(self, findings):
        text = "\n".join(f.message for f in findings)
        assert "CleanScheme" not in text
        assert "Helper" not in text
        # resync() caches but also resyncs _synced_version: allowed.
        assert "'resync'" not in text


class TestCloneContract:
    @pytest.fixture(scope="class")
    def findings(self):
        return findings_in("cloneroot", rules=["clone-contract"])

    def test_missing_reset_clone_flagged(self, findings):
        assert any("ForgetfulScheme" in f.message
                   and "_reset_clone" in f.message for f in findings)

    def test_mapping_touch_in_reset_clone(self, findings):
        assert any("touches the mapping" in f.message
                   and "RebuildingScheme" in f.message for f in findings)

    def test_build_helper_call_in_reset_clone(self, findings):
        assert any("'_build_views'" in f.message for f in findings)

    def test_expensive_builders_in_reset_clone(self, findings):
        text = "\n".join(f.message for f in findings)
        assert "'AnchorDirectory'" in text
        assert "'RangeTable'" in text

    def test_prepare_share_exempt_and_non_scheme_pass(self, findings):
        text = "\n".join(f.message for f in findings)
        assert "CleanCloneScheme" not in text
        assert "Helper" not in text


class TestFrozenMutation:
    @pytest.fixture(scope="class")
    def findings(self):
        return findings_in("frozenroot", rules=["frozen-mutation"])

    def test_every_mutation_kind_flagged(self, findings):
        bad = by_file(findings)["bad_frozen.py"]
        assert len(bad) == 6  # 2 subscript, 1 rebind, 1 augassign, 2 setflags

    def test_builder_and_readers_pass(self, findings):
        assert "good_frozen.py" not in by_file(findings)


class TestDeprecation:
    @pytest.fixture(scope="class")
    def findings(self):
        return findings_in("deproot", rules=["deprecation"])

    def test_internal_callers_flagged(self, findings):
        caller = by_file(findings)["caller.py"]
        assert len(caller) == 2  # old_api() and obj.old_api()
        assert all("old_api" in f.message for f in caller)
        assert all("shim.py" in f.message for f in caller)  # def site

    def test_shim_body_and_new_api_pass(self, findings):
        assert "shim.py" not in by_file(findings)


class TestSuppression:
    @pytest.fixture(scope="class")
    def findings(self):
        return findings_in("supproot")

    def test_inline_and_file_pragmas(self, findings):
        # Three violations in suppressed.py: one silenced by a rule-
        # scoped pragma, one by a blanket pragma; the third pragma names
        # the wrong rule and must NOT silence anything.  skipped.py is
        # opted out entirely.
        here = [f for f in findings if f.path == "suppressed.py"]
        assert [(f.path, f.line) for f in here] == [("suppressed.py", 5)]

    def test_multiline_statement_anchoring(self, findings):
        # A pragma on the first line of a multi-line statement covers
        # the continuation lines too (the dict literal), but a pragma
        # on a def line covers the header only, never the body; and a
        # wrong-rule pragma on a spanned statement silences nothing.
        here = sorted(
            (f.line for f in findings if f.path == "multiline.py"))
        assert here == [19, 26]


class TestForkSafety:
    @pytest.fixture(scope="class")
    def findings(self):
        return findings_in("forkroot", rules=["fork-safety"])

    def test_flags_each_violation_kind(self, findings):
        files = by_file(findings)
        runner = {f.line: f.message for f in files["sim/runner.py"]}
        assert sorted(runner) == [21, 32, 33, 45]
        assert "reads rebindable module global '_WORKER_STORE'" in runner[21]
        assert "nested function 'shard'" in runner[32]
        assert "lambda submitted across the fork boundary" in runner[33]
        assert "bound method 'self.run_one'" in runner[45]

    def test_follows_imports_into_worker_tree(self, findings):
        # server.py submits service.api.execute_request, which hops
        # through a function-local ``from sim import runner`` into the
        # global-reading job two modules away.
        files = by_file(findings)
        (finding,) = files["service/server.py"]
        assert "'execute_request'" in finding.message
        assert "_WORKER_STORE" in finding.message

    def test_wired_and_benign_patterns_are_clean(self, findings):
        # good_runner.py wires the same global-reading job through an
        # initializer (via name indirection), submits a pure job, a
        # partial over one, os.getpid, and a data-attribute callable.
        assert "sim/good_runner.py" not in by_file(findings)


class TestTagSafety:
    @pytest.fixture(scope="class")
    def findings(self):
        return findings_in("tagroot", rules=["tag-safety"])

    def test_flags_each_violation_kind(self, findings):
        files = by_file(findings)
        bad = {f.line: f.message for f in files["schemes/bad.py"]}
        assert sorted(bad) == [20, 32, 56]
        assert "never packs an address-space tag" in bad[20]
        assert "'victim'" in bad[32] and "set_asid" in bad[32]
        assert "'orphan'" in bad[56] and "bind_shared" in bad[56]

    def test_evidence_idioms_and_optout_are_clean(self, findings):
        # good.py proves the tag idiom through a helper into
        # simulate_block, through the explicit tag_base OR, and via
        # tag_safe_block = False opting out entirely.
        files = by_file(findings)
        assert list(files) == ["schemes/bad.py"]


class TestSharedAliasing:
    @pytest.fixture(scope="class")
    def findings(self):
        return findings_in("aliasroot", rules=["shared-aliasing"])

    def test_flags_each_mutation_shape(self, findings):
        files = by_file(findings)
        bad = {f.line: f.message for f in files["schemes/bad.py"]}
        assert sorted(bad) == [17, 20, 23, 26]
        assert "'_runs'" in bad[17]  # subscript store
        assert "'hits'" in bad[20] and "(+=)" in bad[20]
        assert "'table'" in bad[23]  # slice store
        assert "'freq'" in bad[26] and "np.copyto" in bad[26]

    def test_base_class_mutation_reported_cross_file(self, findings):
        # TranslationScheme.note mutates log_buf in schemes/base.py;
        # the class is only registered through its subclasses, so the
        # site is discovered while checking bad.py but reported where
        # the write lives.
        files = by_file(findings)
        (finding,) = files["schemes/base.py"]
        assert "'TranslationScheme.note'" in finding.message
        assert "'log_buf'" in finding.message

    def test_choke_points_and_rebinds_are_clean(self, findings):
        # good.py: _own_*() copy-on-write, plain rebinds, rebuild*/
        # _build* mutations, _reset_clone-covered scratch state, and a
        # _prepare_share helper are all allowed.
        assert "schemes/good.py" not in by_file(findings)


def test_unknown_rule_rejected():
    with pytest.raises(ValueError, match="unknown rule"):
        findings_in("detroot", rules=["no-such-rule"])
