"""Baseline mechanism, JSON output schema, and the CLI front ends."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.checks.baseline import (
    BASELINE_FORMAT,
    BaselineError,
    load_baseline,
    split_by_baseline,
    update_baseline,
    write_baseline,
)
from repro.checks.cli import main as checks_main
from repro.checks.findings import Finding
from repro.checks.runner import OUTPUT_FORMAT, run_checks
from repro.checks.sarif import to_sarif

FIXTURES = Path(__file__).parent / "fixtures"
REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def det_findings():
    root = FIXTURES / "detroot"
    return run_checks([root], root=root, rules=["determinism"],
                      repo_checks=False).findings


class TestBaseline:
    def test_round_trip_masks_findings(self, tmp_path):
        findings = det_findings()
        assert findings
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, findings)
        fingerprints = load_baseline(baseline)
        new, baselined, unused = split_by_baseline(findings, fingerprints)
        assert new == []
        assert len(baselined) == len(findings)
        assert unused == set()

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == set()

    def test_stale_entries_reported(self):
        findings = det_findings()
        fingerprints = {findings[0].fingerprint(), "deadbeefdeadbeef"}
        new, baselined, unused = split_by_baseline(findings, fingerprints)
        assert unused == {"deadbeefdeadbeef"}
        assert len(new) == len(findings) - len(baselined)

    def test_wrong_format_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format": 999, "fingerprints": []}))
        with pytest.raises(BaselineError, match="format"):
            load_baseline(bad)
        bad.write_text("{not json")
        with pytest.raises(BaselineError, match="unreadable"):
            load_baseline(bad)

    def test_format_constant_in_file(self, tmp_path):
        baseline = tmp_path / "b.json"
        write_baseline(baseline, [])
        assert json.loads(baseline.read_text())["format"] == BASELINE_FORMAT


class TestUpdateBaseline:
    def test_prunes_stale_keeps_live(self, tmp_path):
        findings = det_findings()
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, findings)
        # Pretend one violation was fixed: its fingerprint goes stale.
        still = findings[1:]
        fingerprints = load_baseline(baseline)
        _, baselined, unused = split_by_baseline(still, fingerprints)
        kept, pruned = update_baseline(baseline, baselined, unused)
        assert (kept, pruned) == (len(findings) - 1, 1)
        assert load_baseline(baseline) == {
            f.fingerprint() for f in still}

    def test_does_not_adopt_new_findings(self, tmp_path):
        findings = det_findings()
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, findings[:1])
        fingerprints = load_baseline(baseline)
        _, baselined, unused = split_by_baseline(findings, fingerprints)
        update_baseline(baseline, baselined, unused)
        # Only the originally-baselined entry survives.
        assert load_baseline(baseline) == {findings[0].fingerprint()}

    def test_write_is_atomic(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, det_findings())
        # The temp file used for the atomic replace must not linger.
        leftovers = [p for p in tmp_path.iterdir() if p != baseline]
        assert leftovers == []
        assert json.loads(baseline.read_text())["format"] == BASELINE_FORMAT


class TestSarifOutput:
    @pytest.fixture(scope="class")
    def sarif(self):
        root = FIXTURES / "detroot"
        result = run_checks([root], root=root, repo_checks=False)
        return result, to_sarif(result)

    def test_log_shape(self, sarif):
        result, log = sarif
        assert log["version"] == "2.1.0"
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "anchor-tlb-check"
        rule_ids = {r["id"] for r in driver["rules"]}
        assert {"determinism", "fork-safety", "tag-safety",
                "shared-aliasing", "tracked-bytecode",
                "parse-error"} <= rule_ids
        assert len(run["results"]) == len(result.findings)

    def test_results_carry_fingerprints_and_locations(self, sarif):
        result, log = sarif
        (run,) = log["runs"]
        by_fp = {f.fingerprint(): f for f in result.findings}
        for entry in run["results"]:
            fp = entry["partialFingerprints"]["anchorTlbFingerprint/v1"]
            finding = by_fp[fp]
            assert entry["ruleId"] == finding.rule
            assert entry["level"] == "error"
            loc = entry["locations"][0]["physicalLocation"]
            assert loc["artifactLocation"]["uri"] == finding.path
            assert loc["region"]["startLine"] == max(finding.line, 1)
            assert finding.hint in entry["message"]["text"]


class TestJsonOutput:
    def test_schema_and_round_trip(self):
        root = FIXTURES / "detroot"
        result = run_checks([root], root=root, repo_checks=False)
        data = json.loads(result.to_json())
        assert data["format"] == OUTPUT_FORMAT
        assert data["files_scanned"] == 3
        assert data["exit_code"] == 1
        assert "determinism" in data["rules"]
        for entry in data["findings"]:
            finding = Finding.from_dict(entry)
            assert finding.fingerprint() == entry["fingerprint"]
        assert data["findings"] == [f.to_dict() for f in result.findings]


class TestCli:
    def run(self, *argv, cwd=None):
        """Invoke the CLI in-process, capturing stdout."""
        import contextlib
        import io
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = checks_main(list(argv))
        return code, out.getvalue()

    def test_clean_tree_exits_zero(self, tmp_path):
        clean = tmp_path / "ok.py"
        clean.write_text("X = 1\n")
        code, out = self.run(str(clean), "--no-repo-checks")
        assert code == 0
        assert "0 finding(s)" in out

    def test_violations_exit_nonzero_with_json(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nR = np.random.default_rng(0)\n")
        code, out = self.run(str(bad), "--format", "json",
                             "--no-repo-checks")
        assert code == 1
        data = json.loads(out)
        assert data["exit_code"] == 1
        assert data["findings"][0]["rule"] == "determinism"

    def test_write_baseline_then_clean(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nR = np.random.default_rng(0)\n")
        code, _ = self.run(str(bad), "--write-baseline", "--no-repo-checks")
        assert code == 0
        code, out = self.run(str(bad), "--no-repo-checks")
        assert code == 0
        assert "1 baselined" in out

    def test_update_baseline_prunes_and_still_gates(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import numpy as np\n"
            "import time\n"
            "A = np.random.default_rng(0)\n"
            "T = time.time()\n")
        baseline = tmp_path / "b.json"
        code, _ = self.run(str(bad), "--write-baseline",
                           "--baseline", str(baseline), "--no-repo-checks")
        assert code == 0
        # Fix one violation, introduce another: the stale entry must be
        # pruned, the new finding must NOT be adopted (exit stays 1).
        bad.write_text(
            "import numpy as np\n"
            "import datetime\n"
            "A = np.random.default_rng(0)\n"
            "D = datetime.datetime.now()\n")
        code, out = self.run(str(bad), "--update-baseline",
                             "--baseline", str(baseline), "--no-repo-checks")
        assert code == 1
        assert "kept 1 entrie(s), pruned 1 stale" in out
        assert len(json.loads(baseline.read_text())["fingerprints"]) == 1

    def test_sarif_format(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nR = np.random.default_rng(0)\n")
        code, out = self.run(str(bad), "--format", "sarif",
                             "--no-repo-checks")
        assert code == 1
        log = json.loads(out)
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"][0]["ruleId"] == "determinism"

    def test_timings_go_to_stderr(self, tmp_path):
        import contextlib
        import io
        clean = tmp_path / "ok.py"
        clean.write_text("X = 1\n")
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), \
                contextlib.redirect_stderr(err):
            code = checks_main([str(clean), "--timings",
                                "--no-repo-checks"])
        assert code == 0
        assert "parse" in err.getvalue()
        assert "total" in err.getvalue()
        assert "parse" not in out.getvalue()

    def test_rules_filter_and_listing(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nR = np.random.default_rng(0)\n")
        code, _ = self.run(str(bad), "--rules", "dtype-hygiene",
                           "--no-repo-checks")
        assert code == 0  # determinism not selected
        code, out = self.run("--list-rules")
        assert code == 0
        for rule in ("determinism", "scheme-contract", "frozen-mutation",
                     "dtype-hygiene", "deprecation", "tracked-bytecode"):
            assert rule in out

    def test_unknown_rule_is_usage_error(self, tmp_path):
        code, _ = self.run(str(tmp_path), "--rules", "bogus")
        assert code == 2

    def test_parse_error_is_a_finding(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        code, out = self.run(str(broken), "--no-repo-checks")
        assert code == 1
        assert "parse-error" in out


def test_module_and_anchor_tlb_entry_points():
    """`python -m repro.checks` and `anchor-tlb check` both gate."""
    repo_root = REPO_SRC.parents[1]
    for cmd in (
        [sys.executable, "-m", "repro.checks", "--list-rules"],
        [sys.executable, "-m", "repro.experiments.cli", "check",
         "--list-rules"],
    ):
        proc = subprocess.run(
            cmd, capture_output=True, text=True, cwd=repo_root, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "determinism" in proc.stdout
