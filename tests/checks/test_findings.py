"""Finding model: ordering, fingerprints, dict round-trip."""

from repro.checks.findings import Finding


def make(line=3, message="wall-clock read 'time.time()'"):
    return Finding(
        path="experiments/cli.py",
        line=line,
        col=8,
        rule="determinism",
        message=message,
        hint="use time.perf_counter()",
    )


class TestFingerprint:
    def test_stable_across_line_moves(self):
        # Editing code above a baselined finding must not resurrect it.
        assert make(line=3).fingerprint() == make(line=300).fingerprint()

    def test_sensitive_to_rule_path_message(self):
        base = make().fingerprint()
        assert Finding("other.py", 3, 8, "determinism",
                       make().message).fingerprint() != base
        assert make(message="different").fingerprint() != base

    def test_short_hex(self):
        fp = make().fingerprint()
        assert len(fp) == 16
        int(fp, 16)  # valid hex


class TestRoundTrip:
    def test_dict_round_trip(self):
        finding = make()
        data = finding.to_dict()
        assert data["fingerprint"] == finding.fingerprint()
        assert Finding.from_dict(data) == finding

    def test_from_dict_defaults_hint(self):
        data = make().to_dict()
        del data["hint"]
        assert Finding.from_dict(data).hint == ""


def test_sort_order_is_by_location():
    a = Finding("a.py", 5, 0, "determinism", "m")
    b = Finding("a.py", 9, 0, "determinism", "m")
    c = Finding("b.py", 1, 0, "determinism", "m")
    assert sorted([c, b, a]) == [a, b, c]


def test_render_includes_location_rule_and_hint():
    text = make().render()
    assert "experiments/cli.py:3:8" in text
    assert "[determinism]" in text
    assert "hint: use time.perf_counter()" in text
