"""Seeded shared-aliasing violations: four mutation shapes."""

import numpy as np

from schemes.base import TranslationScheme


class MutatingScheme(TranslationScheme):
    def __init__(self, mapping, config):
        super().__init__(mapping, config)
        self._runs = {}
        self.hits = 0
        self.table = np.zeros(64, dtype=np.int64)
        self.freq = np.zeros(64, dtype=np.int64)

    def hot_path(self, key):
        self._runs[key] = self._runs.get(key, 0) + 1

    def bump(self):
        self.hits += 1

    def refill(self, vals):
        self.table[: len(vals)] = vals

    def decay(self):
        np.copyto(self.freq, 0)
