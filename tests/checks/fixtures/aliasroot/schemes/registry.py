from schemes.bad import MutatingScheme
from schemes.good import (
    BuilderScheme,
    CowScheme,
    PrepScheme,
    RebindScheme,
    ResetScheme,
)


def make_scheme(name, mapping, config):
    if name == "mut":
        return MutatingScheme(mapping, config)
    if name == "cow":
        return CowScheme(mapping, config)
    if name == "rebind":
        return RebindScheme(mapping, config)
    if name == "builder":
        return BuilderScheme(mapping, config)
    if name == "reset":
        return ResetScheme(mapping, config)
    if name == "prep":
        return PrepScheme(mapping, config)
    raise KeyError(name)
