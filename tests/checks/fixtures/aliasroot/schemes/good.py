"""Clean aliasing patterns: nothing here may be flagged."""

import numpy as np

from schemes.base import TranslationScheme


class CowScheme(TranslationScheme):
    """Copy-on-write: privatises via _own_*() before mutating."""

    def __init__(self, mapping, config):
        super().__init__(mapping, config)
        self.directory = {}

    def note_map(self, vpn):
        self._own_directory()
        self.directory[vpn] = True

    def _own_directory(self):
        self.directory = dict(self.directory)


class RebindScheme(TranslationScheme):
    """Binds sever the alias, so plain rebinds are always allowed."""

    def __init__(self, mapping, config):
        super().__init__(mapping, config)
        self.extents = ()

    def merge(self, more):
        self.extents = self.extents + tuple(more)


class BuilderScheme(TranslationScheme):
    """Mutations inside rebuild*/_build* choke points are allowed."""

    def __init__(self, mapping, config):
        super().__init__(mapping, config)
        self.index = np.zeros(16, dtype=np.int64)

    def rebuild(self):
        self.index[:] = 0
        self._build_index()

    def _build_index(self):
        self.index[0] = 1


class ResetScheme(TranslationScheme):
    """Attributes rebound by _reset_clone are per-clone, not shared."""

    def __init__(self, mapping, config):
        super().__init__(mapping, config)
        self.scratch = np.zeros(16, dtype=np.int64)

    def poke(self):
        self.scratch[0] = 1

    def _reset_clone(self):
        self.scratch = np.zeros(16, dtype=np.int64)


class PrepScheme(TranslationScheme):
    """Helpers reachable from the share protocol are part of it."""

    def __init__(self, mapping, config):
        super().__init__(mapping, config)
        self.columns = np.zeros(16, dtype=np.int64)

    def _prepare_share(self):
        self._seal()

    def _seal(self):
        self.columns.setflags(write=False)
