import copy


class TranslationScheme:
    def __init__(self, mapping, config):
        self.mapping = mapping
        self.config = config
        self.l1 = object()
        self.log_buf = []

    def note(self, event):
        # Seeded cross-file violation: every registered subclass shares
        # log_buf by reference, and this mutates it in place.
        self.log_buf.append(event)

    def clone_fresh(self, mapping, config):
        self._prepare_share()
        clone = copy.copy(self)
        clone.mapping = mapping
        clone.config = config
        clone._reset_clone()
        return clone

    def _prepare_share(self):
        pass

    def _reset_clone(self):
        pass
