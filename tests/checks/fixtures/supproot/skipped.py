# repro: skip-file — deliberate violations below are invisible
import numpy as np

rng = np.random.default_rng(0)
