"""Multi-line suppression anchoring regression fixture.

The pragma sits on the *first* line of a multi-line statement while
the violating node (the ``np.random.default_rng`` call) starts on a
continuation line — the finding must still be suppressed.  The
``def``-line pragma below must NOT blanket the function body: the
violation inside ``leaky`` has to survive.
"""

import numpy as np

spanned = dict(  # repro: ignore[determinism]
    rng=np.random.default_rng(
        3
    ),
)

scoped_span = [  # repro: ignore[dtype-hygiene]
    np.random.default_rng(4),
]


def leaky(  # repro: ignore[determinism]
    seed,
):
    return np.random.default_rng(seed)
