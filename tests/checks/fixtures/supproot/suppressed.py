import numpy as np

rng = np.random.default_rng(0)  # repro: ignore[determinism]
other = np.random.default_rng(1)  # repro: ignore
wrong = np.random.default_rng(2)  # repro: ignore[dtype-hygiene]
