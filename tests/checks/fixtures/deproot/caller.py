from repro.checks_fixture.shim import new_api, old_api


def uses_old(obj):
    return old_api() + obj.old_api()


def uses_new():
    return new_api()
