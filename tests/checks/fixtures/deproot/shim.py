import warnings


def old_api():
    warnings.warn("old_api() is deprecated; use new_api()",
                  DeprecationWarning, stacklevel=2)
    return new_api()


def new_api():
    return 42
