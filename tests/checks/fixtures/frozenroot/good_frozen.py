class FrozenMapping:
    """The builder itself may assign its columns."""

    def __init__(self, vpns, pfns):
        self.vpns = vpns
        self.pfns = pfns
        self.vpns.setflags(write=False)


def read(frozen):
    return frozen.vpns[0], frozen.page_table.get(3)


def harmless(arr):
    arr.setflags(write=False)
    copy = arr.copy()
    copy[0] = 1
    return copy
