def corrupt(frozen, arr):
    frozen.vpns[0] = 7
    frozen.pfns = arr
    frozen.page_table[3] = 4
    frozen.run_pages[1:] += 1
    arr.setflags(write=True)
    arr.setflags(True)
