"""Clean fork patterns: nothing here may be flagged."""

import os
from concurrent.futures import ProcessPoolExecutor
from functools import partial

from sim.runner import configure_store, job_reading_global

_CACHE = {}  # per-process memo, mutated by item assignment only


def pure_job(spec):
    _CACHE[spec] = spec
    return spec


def wired_pool(specs, root):
    # The initializer's call tree writes _WORKER_STORE, so the worker
    # read in job_reading_global is wired.
    initializer = None
    initargs = ()
    if root is not None:
        initializer = configure_store
        initargs = (root,)
    with ProcessPoolExecutor(
        max_workers=2, initializer=initializer, initargs=initargs
    ) as pool:
        pool.submit(job_reading_global, specs[0])
        pool.submit(pure_job, specs[1])
        pool.submit(partial(pure_job, specs[2]))
        pool.submit(os.getpid)


class Service:
    def __init__(self, job_fn):
        # Data attribute holding a module-level callable: picklable by
        # reference, not a bound method.
        self.job_fn = job_fn

    def dispatch(self, spec):
        with ProcessPoolExecutor(max_workers=2) as pool:
            return pool.submit(self.job_fn, spec)
