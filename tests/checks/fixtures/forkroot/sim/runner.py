"""Seeded fork-safety violations: everything here must be flagged."""

from concurrent.futures import ProcessPoolExecutor, as_completed

_WORKER_STORE = None


def configure_store(root):
    global _WORKER_STORE
    _WORKER_STORE = root


def job_reading_global(spec):
    return _WORKER_STORE, spec


def unwired_pool(specs):
    # No initializer: fork workers freeze the parent's _WORKER_STORE at
    # pool-start and spawn workers never see it at all.
    with ProcessPoolExecutor(max_workers=2) as pool:
        futures = [pool.submit(job_reading_global, s) for s in specs]
        return [f.result() for f in as_completed(futures)]


def closure_pool(specs):
    captured = {}

    def shard(spec):
        return captured, spec

    with ProcessPoolExecutor(max_workers=2) as pool:
        pool.submit(shard, specs[0])
        pool.submit(lambda s: s, specs[1])


class Orchestrator:
    def __init__(self, specs):
        self.specs = specs

    def run_one(self, spec):
        return spec

    def dispatch(self):
        with ProcessPoolExecutor(max_workers=2) as pool:
            return pool.submit(self.run_one, self.specs[0])
