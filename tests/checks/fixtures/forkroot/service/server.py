"""Cross-module wiring case: the submitted callable lives in another
module and reaches the worker global through a function-local import —
the rule must follow both hops.  This pool has no initializer, so the
run_in_executor submission must be flagged."""

from concurrent.futures import ProcessPoolExecutor

from service.api import execute_request


class Server:
    def __init__(self, loop):
        self.loop = loop
        self.pool = ProcessPoolExecutor(max_workers=2)

    async def handle(self, request):
        return await self.loop.run_in_executor(
            self.pool, execute_request, request
        )
