"""Indirection layer: reaches the worker global via a local import."""


def execute_request(request):
    from sim import runner

    return runner.job_reading_global(request)
