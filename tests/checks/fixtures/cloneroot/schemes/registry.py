from repro.checks_fixture.schemes.impl import (
    CleanCloneScheme,
    ForgetfulScheme,
    RebuildingScheme,
)


def make_scheme(name, mapping):
    if name == "forgetful":
        return ForgetfulScheme(mapping)
    if name == "rebuilding":
        return RebuildingScheme(mapping)
    return CleanCloneScheme(mapping)
