from repro.schemes.base import TranslationScheme
from repro.vmos.anchor_directory import AnchorDirectory
from repro.vmos.ranges import RangeTable


class ForgetfulScheme(TranslationScheme):
    """Registered, but never defines _reset_clone: clones alias its L2."""

    name = "forgetful"

    def access(self, vpn):
        return 0

    def _translate(self, vpn):
        return 0


class RebuildingScheme(TranslationScheme):
    """_reset_clone pays the O(mapping) costs cloning exists to avoid."""

    name = "rebuilding"

    def access(self, vpn):
        return 0

    def _translate(self, vpn):
        return 0

    def _build_views(self):
        self._small = dict(self.mapping.items())

    def _reset_clone(self):
        self._small = dict(self.mapping.items())       # mapping touch
        self._build_views()                            # _build* call
        self.directory = AnchorDirectory.build(self._small, distance=8)
        self.table = RangeTable(self._small)


class CleanCloneScheme(TranslationScheme):
    """The discipline done right: share in _prepare_share, reset hardware."""

    name = "clean-clone"

    def access(self, vpn):
        return 0

    def _translate(self, vpn):
        return 0

    def _build_views(self):
        self._small = dict(self.mapping.items())

    def _prepare_share(self):
        self._build_views()                            # exempt: prototype side
        self.table = RangeTable(self.mapping.frozen())

    def _reset_clone(self):
        self.l2 = SetAssociativeTLB(self.config.l2.entries, self.config.l2.ways)
        self._resident = set()


class Helper:
    """Not a scheme: free to name its methods anything."""

    def _reset_clone(self):
        self.view = dict(self.mapping.items())
