"""Seeded tag-safety violations."""

from hw.tlb import SetAssociativeTLB
from schemes.base import TranslationScheme


class RawKeyScheme(TranslationScheme):
    """Writes raw keys into the L2 buckets: no tag packing anywhere in
    the access_block tree -> key-idiom finding."""

    tag_safe_block = True

    def __init__(self, mapping, config):
        super().__init__(mapping, config)
        self.l2 = SetAssociativeTLB(1024, 8)

    def access(self, vpn):
        return vpn

    def access_block(self, vpns):
        for vpn in vpns:
            self._fill_raw(vpn)

    def _fill_raw(self, vpn):
        # Raw key, ignores self.l2._tag_base entirely.
        self.l2._sets[vpn] = vpn

    def _reset_clone(self):
        self.l2 = SetAssociativeTLB(1024, 8)


class ForgottenSideTLB(TranslationScheme):
    """Owns a side TLB that set_asid never retags -> cascade finding."""

    tag_safe_block = True

    def __init__(self, mapping, config):
        super().__init__(mapping, config)
        self.l2 = SetAssociativeTLB(1024, 8)
        self.victim = SetAssociativeTLB(32, 8)

    def access(self, vpn):
        return vpn

    def access_block(self, vpns):
        from sim.lru import simulate_block

        simulate_block(self.l2, vpns, vpns, None)
        simulate_block(self.victim, vpns, vpns, None)

    def _reset_clone(self):
        self.l2 = SetAssociativeTLB(1024, 8)
        self.victim = SetAssociativeTLB(32, 8)


class UnsharedTLBScheme(TranslationScheme):
    """set_asid covers everything, but the fleet's bind_shared helper
    never rebinds 'orphan' -> bind_shared finding."""

    tag_safe_block = True

    def __init__(self, mapping, config):
        super().__init__(mapping, config)
        self.l2 = SetAssociativeTLB(1024, 8)
        self.orphan = SetAssociativeTLB(16, 4)

    def access(self, vpn):
        return vpn

    def access_block(self, vpns):
        from sim.lru import simulate_block

        simulate_block(self.l2, vpns, vpns, None)
        simulate_block(self.orphan, vpns, vpns, None)

    def set_asid(self, asid):
        super().set_asid(asid)
        self.orphan.set_tag(asid)

    def _reset_clone(self):
        self.l2 = SetAssociativeTLB(1024, 8)
        self.orphan = SetAssociativeTLB(16, 4)
