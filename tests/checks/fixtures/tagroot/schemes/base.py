from hw.tlb import SetAssociativeTLB


class TranslationScheme:
    tag_safe_block = True

    def __init__(self, mapping, config):
        self.mapping = mapping
        self.config = config
        self.l1 = SetAssociativeTLB(64, 4)

    def access(self, vpn):
        raise NotImplementedError

    def access_block(self, vpns):
        for vpn in vpns:
            self.access(vpn)

    def set_asid(self, asid):
        if not self.tag_safe_block:
            raise ValueError("scheme does not support ASID tagging")
        self.l1.set_tag(asid)
        for attr in ("l2", "range_tlb"):
            tlb = getattr(self, attr, None)
            if tlb is not None:
                tlb.set_tag(asid)

    def _prepare_share(self):
        pass

    def _reset_clone(self):
        pass
