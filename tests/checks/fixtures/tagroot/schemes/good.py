"""Clean tag-safety patterns: nothing here may be flagged."""

from hw.tlb import TAG_SHIFT, ClusterTLB, RangeTLB, SetAssociativeTLB
from schemes.base import TranslationScheme
from sim.lru import simulate_block


class BatchedScheme(TranslationScheme):
    """Evidence through simulate_block, two helpers deep."""

    tag_safe_block = True

    def __init__(self, mapping, config):
        super().__init__(mapping, config)
        self.l2 = SetAssociativeTLB(1024, 8)
        self.range_tlb = RangeTLB()

    def access(self, vpn):
        return vpn

    def access_block(self, vpns):
        self._resolve(vpns)

    def _resolve(self, vpns):
        return simulate_block(self.l2, vpns, vpns, None)

    def _reset_clone(self):
        self.l2 = SetAssociativeTLB(1024, 8)
        self.range_tlb = RangeTLB()


class OrIdiomScheme(TranslationScheme):
    """Evidence through the explicit tag-base OR idiom."""

    tag_safe_block = True

    def __init__(self, mapping, config):
        super().__init__(mapping, config)
        self.l2 = SetAssociativeTLB(1024, 8)
        self.clustered = ClusterTLB(64)

    def access(self, vpn):
        return vpn

    def access_block(self, vpns):
        tag_base = self.l2.tag << TAG_SHIFT
        for vpn in vpns:
            self.l2._sets[vpn | tag_base] = vpn

    def set_asid(self, asid):
        super().set_asid(asid)
        self.clustered.array.set_tag(asid)

    def _reset_clone(self):
        self.l2 = SetAssociativeTLB(1024, 8)
        self.clustered = ClusterTLB(64)


class OptOutScheme(TranslationScheme):
    """tag_safe_block = False opts out of tagging wholesale: raw keys
    and no cascade are fine here."""

    tag_safe_block = False

    def __init__(self, mapping, config):
        super().__init__(mapping, config)
        self.l2 = SetAssociativeTLB(1024, 8)
        self.private = SetAssociativeTLB(32, 8)

    def access(self, vpn):
        return vpn

    def access_block(self, vpns):
        for vpn in vpns:
            self.l2._sets[vpn] = vpn

    def _reset_clone(self):
        self.l2 = SetAssociativeTLB(1024, 8)
        self.private = SetAssociativeTLB(32, 8)
