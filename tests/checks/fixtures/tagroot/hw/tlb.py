TAG_SHIFT = 46


class SetAssociativeTLB:
    def __init__(self, entries, ways):
        self._sets = {}
        self.tag = 0
        self._tag_base = 0

    def set_tag(self, tag):
        self.tag = tag
        self._tag_base = tag << TAG_SHIFT

    def lookup(self, idx, key):
        return self._sets.get(key | self._tag_base)


class RangeTLB:
    def __init__(self):
        self._entries = {}
        self._tag_base = 0

    def set_tag(self, tag):
        self._tag_base = tag << TAG_SHIFT


class ClusterTLB:
    """TLB-like only through its inner array (no set_tag of its own)."""

    def __init__(self, geometry):
        self.array = SetAssociativeTLB(geometry, 4)
