from hw.tlb import TAG_SHIFT


def simulate_block(tlb, set_indices, keys, value_of):
    """Batched resolver: packs the array's tag into every key itself."""
    tag = tlb.tag
    if tag:
        keys = [k | (tag << TAG_SHIFT) for k in keys]
    return [tlb.lookup(i, k) for i, k in zip(set_indices, keys)]
