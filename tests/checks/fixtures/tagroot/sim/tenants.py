"""Fleet shard with the nested bind_shared helper the rule scans."""


def simulate_shard(schemes, shared):
    def bind_shared(s):
        s.l1 = shared["l1"]
        s.l2 = shared["l2"]
        s.range_tlb = shared["range_tlb"]
        s.victim = shared["victim"]
        s.clustered.array = shared["cluster_array"]
        # UnsharedTLBScheme.orphan deliberately missing.

    for scheme in schemes:
        bind_shared(scheme)
    return schemes
