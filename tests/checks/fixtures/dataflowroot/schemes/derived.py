import numpy as np

from schemes.base import BaseScheme


class DerivedScheme(BaseScheme):
    def __init__(self, mapping):
        super().__init__(mapping)
        self.table = np.zeros(64, dtype=np.int64)
        self.freq = np.zeros(64, dtype=np.int64)
        self.log = []

    def _resolve(self, vpns):
        self.hits += len(vpns)
        self.table[: len(vpns)] = 1
        np.copyto(self.freq, 0)
        self.log.append(len(vpns))
        self.cache = {}
        return super()._resolve(vpns)
