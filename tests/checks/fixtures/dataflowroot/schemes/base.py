from sim.lru import simulate_block

_TRACE_SINK = None


def configure_sink(sink):
    global _TRACE_SINK
    _TRACE_SINK = sink


class BaseScheme:
    def __init__(self, mapping):
        self.mapping = mapping
        self.hits = 0

    def access_block(self, vpns):
        return self._resolve(vpns)

    def _resolve(self, vpns):
        return simulate_block(self, vpns, vpns, None)

    def lookup(self, idx, key):
        return None
