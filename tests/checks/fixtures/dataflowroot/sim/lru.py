def simulate_block(tlb, set_indices, keys, value_of):
    hits = 0
    for idx, key in zip(set_indices, keys):
        if tlb.lookup(idx, key) is not None:
            hits += 1
    return hits
