"""Mimics repro/util/rng.py: the one sanctioned entropy source."""
import numpy as np


def make_rng(seed):
    return np.random.default_rng(seed)
