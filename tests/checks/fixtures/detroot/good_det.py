"""Determinism-clean counterparts (fixture)."""
import os
import time


def duration():
    return time.perf_counter(), time.monotonic()


def listing(path):
    return sorted(os.listdir(path))


def draw(make_rng):
    return make_rng(7)
