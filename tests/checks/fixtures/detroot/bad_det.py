"""Deliberate determinism violations (fixture; parsed, never imported)."""
import random  # noqa: F401

import numpy as np


def draw():
    rng = np.random.default_rng(0)
    np.random.seed(1)
    return rng


def clock():
    import time
    return time.time()


def stamp():
    from datetime import datetime
    return datetime.now()


def salted(key):
    return hash(key)


def listing(path):
    import os
    return os.listdir(path)
