from repro.schemes.base import TranslationScheme


class HollowScheme(TranslationScheme):
    """Registered but missing access/_translate/name; bad hooks too."""

    def _on_mapping_update(self, frozen):
        self._view = frozen.page_table  # rebuilds, but forgets the flush

    def refresh(self):
        self._cache = self.mapping.frozen().page_table


class LeakyTagScheme(TranslationScheme):
    """Batched hook with no tag declaration and a bespoke signature."""

    name = "leaky"

    def access(self, vpn):
        return 0

    def _translate(self, vpn):
        return 0

    def access_block(self, vpns, prefetch=True):
        for vpn in vpns:
            self.access(vpn)


class CleanScheme(TranslationScheme):
    name = "clean"
    tag_safe_block = True

    def __init__(self, mapping, config=None):
        self._small = mapping.frozen().page_table

    def _build_views(self):
        self._huge = dict(self.mapping.items())

    def _on_mapping_update(self, frozen):
        self._build_views()
        self.flush()

    def resync(self):
        self._view = self.mapping.frozen()
        self._synced_version = self.mapping.version

    def access(self, vpn):
        return 0

    def _translate(self, vpn):
        return 0

    def access_block(self, vpns):
        for vpn in vpns:
            self.access(vpn)


class Helper:
    """Not a scheme: free to do what it wants."""

    def cache(self, mapping):
        self.snapshot = mapping
