from repro.checks_fixture.schemes.impl import CleanScheme, HollowScheme


def make_scheme(name, mapping):
    if name == "hollow":
        return HollowScheme(mapping)
    return CleanScheme(mapping)
