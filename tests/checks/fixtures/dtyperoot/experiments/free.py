import numpy as np

cold_path = np.zeros(3)  # outside the hot-path scope: not flagged
