import numpy as np

a = np.zeros(4)
b = np.array([1, 2])
c = np.full((2,), -1)
d = np.arange(10)
