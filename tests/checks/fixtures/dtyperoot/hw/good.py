import numpy as np

a = np.zeros(4, dtype=np.int64)
b = np.array([1, 2], dtype=np.int64)
c = np.empty(0, np.int64)
d = np.arange(10, dtype=np.uint64)
e = np.zeros_like(a)
