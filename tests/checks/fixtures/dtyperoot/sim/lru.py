import numpy as np

hot = np.ones(3)
