"""Determinism parity and cache integration for the parallel matrix.

The core archetype tests of the orchestrator PR: the same matrix slice
run with ``workers=0``, ``workers=2``, and twice against a warm cache
must yield byte-identical ``to_dict()`` payloads, and a full fig7
driver run with ``--workers 4`` must match the serial run and complete
from cache with zero simulations on an immediate re-run.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig7, table6
from repro.experiments.common import (
    STATIC_IDEAL,
    ExperimentConfig,
    MatrixRunner,
)
from repro.sim.runner import ResultStore
from repro.sim.workloads import WORKLOAD_ORDER

SLICE_WORKLOADS = ("sphinx3", "omnetpp")
SLICE_SCHEMES = ("base", "anchor-dyn", STATIC_IDEAL)
SLICE_CONFIG = ExperimentConfig(references=600, seed=7, ideal_subsample=8)


def _payloads(runner: MatrixRunner) -> dict[tuple, str]:
    """Canonical JSON bytes per resolved cell."""
    return {cell: result.to_json() for cell, result in runner._results.items()}


class TestDeterminismParity:
    def test_serial_parallel_and_warm_cache_agree(self, tmp_path):
        store = ResultStore(tmp_path / "cache")

        serial = MatrixRunner(SLICE_CONFIG, workers=0)
        serial.prefetch(SLICE_WORKLOADS, ("medium",), SLICE_SCHEMES)
        baseline = _payloads(serial)
        assert len(baseline) == len(SLICE_WORKLOADS) * len(SLICE_SCHEMES)

        parallel = MatrixRunner(SLICE_CONFIG, workers=2, store=store)
        parallel.prefetch(SLICE_WORKLOADS, ("medium",), SLICE_SCHEMES)
        assert _payloads(parallel) == baseline
        assert parallel.summaries[-1].computed == len(baseline)

        # Twice against the now-warm cache: byte-identical, zero computed.
        for _ in range(2):
            warm = MatrixRunner(SLICE_CONFIG, workers=2, store=store)
            warm.prefetch(SLICE_WORKLOADS, ("medium",), SLICE_SCHEMES)
            assert _payloads(warm) == baseline
            summary = warm.summaries[-1]
            assert summary.computed == 0
            assert summary.cached == len(baseline)

    def test_single_cell_run_agrees_with_prefetched(self, tmp_path):
        serial = MatrixRunner(SLICE_CONFIG)
        direct = serial.run("sphinx3", "medium", "anchor-dyn").to_json()

        parallel = MatrixRunner(
            SLICE_CONFIG, workers=2, store=ResultStore(tmp_path / "cache")
        )
        parallel.prefetch(("sphinx3",), ("medium",), ("anchor-dyn",))
        via_pool = parallel._results[("sphinx3", "medium", "anchor-dyn")]
        assert via_pool.to_json() == direct

    def test_table6_distances_parallel_matches_serial(self, tmp_path):
        serial = MatrixRunner(SLICE_CONFIG)
        parallel = MatrixRunner(
            SLICE_CONFIG, workers=2, store=ResultStore(tmp_path / "cache")
        )
        report_serial = table6.run(runner=serial, workloads=SLICE_WORKLOADS,
                                   scenarios=("low", "medium"))
        report_parallel = table6.run(runner=parallel,
                                     workloads=SLICE_WORKLOADS,
                                     scenarios=("low", "medium"))
        assert report_serial.render() == report_parallel.render()


class TestFig7Integration:
    """The acceptance criterion: full fig7, parallel == serial, warm
    cache re-run executes zero simulations."""

    CONFIG = ExperimentConfig(references=300, seed=11)

    def test_full_fig7_parallel_matches_serial_then_runs_from_cache(
        self, tmp_path
    ):
        serial = MatrixRunner(self.CONFIG)
        report_serial = fig7.run(runner=serial, include_ideal=False)

        store = ResultStore(tmp_path / "cache")
        parallel = MatrixRunner(self.CONFIG, workers=4, store=store)
        report_parallel = fig7.run(runner=parallel, include_ideal=False)

        # Identical results, cell by cell, at the byte level.
        assert _payloads(parallel) == _payloads(serial)
        assert report_parallel.render() == report_serial.render()
        cells = len(WORKLOAD_ORDER) * len(report_serial.headers[1:])
        assert parallel.summaries[-1].computed == cells
        assert parallel.summaries[-1].failed == 0

        # Immediate re-run: everything from cache, zero simulations.
        warm = MatrixRunner(self.CONFIG, workers=4, store=store)
        report_warm = fig7.run(runner=warm, include_ideal=False)
        assert report_warm.render() == report_serial.render()
        summary = warm.summaries[-1]
        assert summary.computed == 0
        assert summary.failed == 0
        assert summary.cached == cells
        assert store.hits >= cells

    def test_cache_shared_across_runner_instances_and_schemes(self, tmp_path):
        """fig7 cells warm the cache for any experiment sharing them."""
        store = ResultStore(tmp_path / "cache")
        first = MatrixRunner(self.CONFIG, store=store)
        first.prefetch(("sphinx3",), ("demand",), ("base", "thp"))
        second = MatrixRunner(self.CONFIG, store=store)
        second.prefetch(("sphinx3",), ("demand",), ("base", "thp", "rmm"))
        summary = second.summaries[-1]
        assert summary.cached == 2
        assert summary.computed == 1
