"""Tests for the Fig. 1 contiguity-CDF experiment."""

import pytest

from repro.experiments import fig1


@pytest.fixture(scope="module")
def report():
    return fig1.run(workloads=("raytrace",), profiles=("pristine", "heavy"),
                    seeds=(1, 2))


class TestFig1:
    def test_rows_per_profile_and_seed(self, report):
        labels = [row[0] for row in report.table]
        assert "raytrace/pristine/s1" in labels
        assert "raytrace/heavy/s1" in labels and "raytrace/heavy/s2" in labels

    def test_cdf_monotone_per_row(self, report):
        for row in report.table:
            values = [float(v) for v in row[1:]]
            assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))
            assert 0.0 <= values[0] and values[-1] <= 1.0

    def test_pressure_shifts_cdf_left(self, report):
        """Heavier fragmentation => more pages in small chunks."""
        pristine = report.row_for("raytrace/pristine/s1")
        heavy = report.row_for("raytrace/heavy/s1")
        at_16_pages = report.headers.index("16")
        assert heavy[at_16_pages] >= pristine[at_16_pages]

    def test_spread_is_nontrivial(self, report):
        """The paper's point: contiguity varies a lot run to run."""
        assert max(
            fig1.spread_at(report, point) for point in fig1.CHUNK_AXIS
        ) > 0.1
