"""Tests for the anchor-tlb CLI."""

import pytest

from repro.experiments.cli import main


class TestCLI:
    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_table6_runs(self, capsys):
        assert main(["table6", "--references", "1500", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Table 6" in out
        assert "GemsFDTD" in out

    def test_fig2_runs(self, capsys):
        assert main(["fig2", "--references", "1500"]) == 0
        out = capsys.readouterr().out
        assert "Fig.2" in out

    def test_distance_cost_runs(self, capsys):
        assert main(["distance-cost"]) == 0
        assert "452" in capsys.readouterr().out
