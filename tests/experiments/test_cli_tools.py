"""Tests for the CLI's list/inspect/plot tooling."""

import pytest

from repro.experiments.cli import main


class TestListCommand:
    def test_lists_workloads_and_schemes(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gups" in out and "omnetpp" in out
        assert "anchor-dyn" in out
        assert "Scenarios: demand, eager, low, medium, high, max" in out


class TestInspectCommand:
    def test_inspect_shows_selection(self, capsys):
        assert main(["inspect", "--workload", "sphinx3",
                     "--scenario", "low", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "sphinx3 / low" in out
        assert "<-- selected" in out
        assert "mapping:" in out and "trace:" in out

    def test_inspect_unknown_workload(self):
        with pytest.raises(KeyError):
            main(["inspect", "--workload", "quake"])


class TestPlotFlag:
    def test_fig2_plot_renders_bars(self, capsys):
        assert main(["fig2", "--references", "1500", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "|#" in out
        assert "small:" in out and "large:" in out
