"""Tests for the ablation experiments (small configurations)."""

import pytest

from repro.experiments import ablations
from repro.experiments.common import ExperimentConfig


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(references=2500, seed=5, ideal_subsample=8)


class TestDistanceSensitivity:
    def test_marks_dynamic_pick(self, config):
        report = ablations.distance_sensitivity("sphinx3", "medium", config)
        marked = [row for row in report.table if row[2]]
        assert len(marked) == 1


class TestL2SizeSweep:
    def test_bigger_l2_never_hurts(self, config):
        report = ablations.l2_size_sweep(
            "sphinx3", "medium", sizes=(256, 1024, 4096),
            schemes=("base",), config=config,
        )
        walks = report.column("base")
        assert walks == sorted(walks, reverse=True)

    def test_anchor_advantage_persists_across_sizes(self, config):
        report = ablations.l2_size_sweep(
            "sphinx3", "medium", sizes=(512, 2048),
            schemes=("base", "anchor-dyn"), config=config,
        )
        for row in report.table:
            assert row[2] <= row[1]


class TestRegionAblation:
    def test_regions_not_worse_than_single_distance(self):
        report = ablations.region_anchors(references=8000, seed=1)
        single = report.table[0][1]
        per_region = report.table[1][1]
        assert per_region <= single * 1.02


class TestCostWeighting:
    def test_reports_both_picks(self, config):
        report = ablations.cost_weighting(
            workloads=("sphinx3",), config=config
        )
        row = report.table[0]
        assert row[1] in {2 ** i for i in range(1, 17)}
        assert row[2] in {2 ** i for i in range(1, 17)}
        # The simulated best column holds the minimum walks.
        assert row[6] <= row[4] and row[6] <= row[5]
