"""Tests for the headline-claim checker."""

import pytest

from repro.experiments import headline
from repro.experiments.common import ExperimentConfig, MatrixRunner


@pytest.fixture(scope="module")
def report():
    runner = MatrixRunner(ExperimentConfig(references=5000, seed=7))
    return headline.run(
        runner=runner, workloads=("sphinx3", "omnetpp", "milc", "gups")
    )


class TestHeadline:
    def test_one_row_per_scenario(self, report):
        assert [row[0] for row in report.table] == [
            "demand", "eager", "low", "medium", "high", "max"
        ]

    def test_verdicts_are_pass_fail(self, report):
        assert {row[4] for row in report.table} <= {"PASS", "FAIL"}

    def test_best_prior_is_a_prior(self, report):
        for row in report.table:
            assert row[1] in headline.PRIORS

    def test_claim_holds_on_this_subset(self, report):
        # Four representative workloads: the abstract's claim holds.
        assert headline.holds(report), report.render()

    def test_note_counts_passes(self, report):
        passes = sum(1 for row in report.table if row[4] == "PASS")
        assert f"{passes}/6" in report.notes[0]

    def test_cli_entry(self, capsys):
        from repro.experiments.cli import main
        assert main(["headline", "--references", "1200"]) == 0
        assert "Headline" in capsys.readouterr().out
