"""Tests for the Report container and figure drivers (small configs)."""

import pytest

from repro.experiments import fig2, fig9, fig10, table5, table6
from repro.experiments.common import ExperimentConfig, MatrixRunner
from repro.experiments.report import Report

WORKLOADS = ("sphinx3", "omnetpp")
SCENARIOS = ("medium", "max")


@pytest.fixture(scope="module")
def runner():
    return MatrixRunner(ExperimentConfig(references=2500, seed=3,
                                         ideal_subsample=8))


class TestReport:
    def test_render_contains_rows(self):
        report = Report("T", ["a", "b"], [["x", 1.0]])
        text = report.render()
        assert "T" in text and "x" in text

    def test_row_for_and_column(self):
        report = Report("T", ["k", "v"], [["x", 1.0], ["y", 2.0]])
        assert report.row_for("y") == ["y", 2.0]
        assert report.column("v") == [1.0, 2.0]
        with pytest.raises(KeyError):
            report.row_for("z")

    def test_notes_rendered(self):
        report = Report("T", ["a"], [[1]], notes=["hello"])
        assert "hello" in report.render()


class TestFigureDrivers:
    def test_fig2_shape(self, runner):
        report = fig2.run(runner=runner, workloads=WORKLOADS)
        assert [row[0] for row in report.table] == ["small", "medium", "large"]
        base = report.column("base")
        assert all(v == pytest.approx(100.0) for v in base)

    def test_fig9_rows_are_scenarios(self, runner):
        report = fig9.run(runner=runner, include_ideal=False,
                          workloads=WORKLOADS, scenarios=SCENARIOS)
        assert [row[0] for row in report.table] == list(SCENARIOS)

    def test_fig10_cpi_totals_consistent(self, runner):
        report = fig10.run(runner=runner, include_ideal=False,
                           workloads=("sphinx3",), scenario="medium")
        for row in report.table:
            assert row[5] == pytest.approx(row[2] + row[3] + row[4])

    def test_table5_shares_sum_to_100(self, runner):
        report = table5.run(runner=runner, workloads=WORKLOADS)
        for row in report.table:
            assert row[1] + row[2] + row[3] == pytest.approx(100.0, abs=0.5)
            assert row[4] + row[5] + row[6] == pytest.approx(100.0, abs=0.5)

    def test_table6_format(self, runner):
        report = table6.run(runner=runner, workloads=WORKLOADS,
                            scenarios=("low", "medium"))
        for row in report.table:
            for cell in row[1:]:
                assert "/" in str(cell)

    def test_table6_low_selects_4(self, runner):
        distances = table6.selected_distances(runner, "low",
                                              workloads=WORKLOADS)
        assert all(d == 4 for d in distances.values())


class TestReportSerialisation:
    def test_to_dict_rows_keyed_by_headers(self):
        report = Report("T", ["k", "v"], [["x", 1.0]], notes=["n"])
        data = report.to_dict()
        assert data["rows"] == [{"k": "x", "v": 1.0}]
        assert data["notes"] == ["n"]
        assert data["title"] == "T"

    def test_to_json_roundtrip(self):
        import json

        report = Report("T", ["k", "v"], [["x", 1.5], ["y", 2.5]])
        data = json.loads(report.to_json())
        assert data["rows"][1]["v"] == 2.5
