"""Sanity checks on the transcribed paper reference data."""

import pytest

from repro.experiments.paper_data import (
    PAPER_DISTANCE_CHANGE_FOOTPRINT_PAGES,
    PAPER_DISTANCE_CHANGE_MS,
    PAPER_MEAN_REDUCTION,
    PAPER_TABLE5,
    PAPER_TABLE6,
)
from repro.params import ANCHOR_DISTANCES
from repro.sim.workloads import WORKLOAD_ORDER


class TestTable6Transcription:
    def test_covers_all_figure_workloads(self):
        assert set(PAPER_TABLE6) == set(WORKLOAD_ORDER)

    def test_all_six_scenarios_per_workload(self):
        for workload, row in PAPER_TABLE6.items():
            assert set(row) == {"demand", "eager", "low", "medium",
                                "high", "max"}, workload

    def test_distances_are_valid_candidates(self):
        for row in PAPER_TABLE6.values():
            for distance in row.values():
                assert distance in ANCHOR_DISTANCES

    def test_low_is_four_everywhere(self):
        assert all(row["low"] == 4 for row in PAPER_TABLE6.values())


class TestTable5Transcription:
    def test_covers_all_figure_workloads(self):
        assert set(PAPER_TABLE5) == set(WORKLOAD_ORDER)

    def test_shares_sum_to_about_100(self):
        for workload, row in PAPER_TABLE5.items():
            for scenario, shares in row.items():
                assert sum(shares) == pytest.approx(100, abs=2), (
                    workload, scenario
                )


class TestOtherConstants:
    def test_reductions_are_percentages(self):
        for scenario in PAPER_MEAN_REDUCTION.values():
            for value in scenario.values():
                assert 0 < value < 100

    def test_distance_change_points(self):
        assert PAPER_DISTANCE_CHANGE_MS[8] > PAPER_DISTANCE_CHANGE_MS[64]
        assert PAPER_DISTANCE_CHANGE_MS[64] > PAPER_DISTANCE_CHANGE_MS[512]
        # 30 GiB of 4 KiB pages.
        assert PAPER_DISTANCE_CHANGE_FOOTPRINT_PAGES == 30 * 262_144
