"""MatrixRunner + TraceStore wiring: one cache dir, one generation."""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentConfig, MatrixRunner
from repro.sim.trace_store import TraceStore

CONFIG = ExperimentConfig(references=2000, seed=5, epoch_references=500)


class TestMatrixRunnerTraceStore:
    def test_cache_dir_implies_trace_store(self, tmp_path):
        runner = MatrixRunner(CONFIG, cache_dir=tmp_path)
        assert isinstance(runner.trace_store, TraceStore)
        assert runner.trace_store.root == tmp_path / "traces"

    def test_no_cache_dir_no_store(self):
        assert MatrixRunner(CONFIG).trace_store is None

    def test_trace_served_from_store_is_mmap(self, tmp_path):
        runner = MatrixRunner(CONFIG, cache_dir=tmp_path)
        trace = runner.trace("gups")
        assert isinstance(trace.vpns, np.memmap)
        eager = MatrixRunner(CONFIG).trace("gups")
        np.testing.assert_array_equal(np.asarray(trace.vpns), eager.vpns)

    def test_two_runners_share_one_generation(self, tmp_path):
        first = MatrixRunner(CONFIG, cache_dir=tmp_path)
        first.run("gups", "demand", "base")
        second = MatrixRunner(CONFIG, cache_dir=tmp_path)
        second.trace("gups")
        assert second.trace_store.generation_count() == 1

    def test_prefetch_records_generation_in_summary(self, tmp_path):
        runner = MatrixRunner(CONFIG, cache_dir=tmp_path)
        summary = runner.prefetch(("gups",), ("demand",), ("base", "thp"))
        assert summary is not None
        assert summary.traces_generated == 1
        assert summary.peak_rss_bytes > 0
        assert runner.trace_store.generation_count() == 1

    def test_store_backed_results_match_eager(self, tmp_path):
        stored = MatrixRunner(CONFIG, cache_dir=tmp_path).run(
            "gups", "demand", "anchor-dyn")
        eager = MatrixRunner(CONFIG).run("gups", "demand", "anchor-dyn")
        assert stored.to_dict() == eager.to_dict()
