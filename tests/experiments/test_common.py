"""Tests for the experiment matrix runner."""

import pytest

from repro.experiments.common import (
    STATIC_IDEAL,
    ExperimentConfig,
    MatrixRunner,
    figure_schemes,
)


@pytest.fixture(scope="module")
def runner():
    return MatrixRunner(ExperimentConfig(references=3000, seed=2,
                                         ideal_subsample=8))


class TestRunner:
    def test_mapping_cached(self, runner):
        a = runner.mapping("sphinx3", "medium")
        b = runner.mapping("sphinx3", "medium")
        assert a is b

    def test_trace_cached(self, runner):
        assert runner.trace("sphinx3") is runner.trace("sphinx3")

    def test_run_cell_and_cache(self, runner):
        r1 = runner.run("sphinx3", "medium", "base")
        r2 = runner.run("sphinx3", "medium", "base")
        assert r1 is r2
        assert r1.stats.accesses == 3000

    def test_relative_misses_base_is_100(self, runner):
        assert runner.relative_misses("sphinx3", "medium", "base") == 100.0

    def test_static_ideal_cell(self, runner):
        result = runner.run("sphinx3", "medium", STATIC_IDEAL)
        assert result.scheme == "anchor-ideal"
        assert "ideal_distance" in result.extras

    def test_ideal_not_worse_than_dynamic(self, runner):
        dynamic = runner.run("sphinx3", "medium", "anchor-dyn")
        ideal = runner.run("sphinx3", "medium", STATIC_IDEAL)
        assert ideal.stats.walks <= dynamic.stats.walks * 1.05

    def test_scenario_rows_shape(self, runner):
        rows = runner.scenario_rows("medium", ("base", "thp"),
                                    workloads=("sphinx3", "omnetpp"))
        assert len(rows) == 3  # two workloads + mean
        assert rows[-1][0] == "mean"
        assert rows[-1][1] == pytest.approx(100.0)


class TestFigureSchemes:
    def test_with_and_without_ideal(self):
        assert figure_schemes(True)[-1] == STATIC_IDEAL
        assert STATIC_IDEAL not in figure_schemes(False)
