"""Direct tests for the figure drivers not covered by test_reports."""

import pytest

from repro.experiments import fig7, fig8, fig10, fig11
from repro.experiments.common import ExperimentConfig, MatrixRunner

WORKLOADS = ("sphinx3", "omnetpp")


@pytest.fixture(scope="module")
def runner():
    return MatrixRunner(ExperimentConfig(references=2000, seed=6,
                                         ideal_subsample=8))


class TestFig7And8:
    def test_fig7_structure(self, runner):
        report = fig7.run(runner=runner, include_ideal=False,
                          workloads=WORKLOADS)
        assert report.table[-1][0] == "mean"
        assert len(report.table) == len(WORKLOADS) + 1
        base = report.column("base")
        assert all(v == pytest.approx(100.0) for v in base)

    def test_fig8_anchor_at_most_base(self, runner):
        report = fig8.run(runner=runner, include_ideal=False,
                          workloads=WORKLOADS)
        headers = list(report.headers)
        for row in report.table:
            assert row[headers.index("anchor-dyn")] <= 100.0 + 1e-9

    def test_fig7_and_fig8_share_runner_cache(self, runner):
        before = len(runner._results)
        fig7.run(runner=runner, include_ideal=False, workloads=WORKLOADS)
        mid = len(runner._results)
        fig7.run(runner=runner, include_ideal=False, workloads=WORKLOADS)
        assert len(runner._results) == mid
        assert mid >= before


class TestFig10And11:
    def test_fig10_row_per_workload_scheme(self, runner):
        report = fig10.run(runner=runner, include_ideal=False,
                           workloads=WORKLOADS, scenario="medium")
        schemes = {row[1] for row in report.table}
        assert "base" in schemes and "anchor-dyn" in schemes
        assert len(report.table) == len(WORKLOADS) * len(schemes)

    def test_fig11_title_and_scenario(self, runner):
        report = fig11.run(runner=runner, include_ideal=False,
                           workloads=("sphinx3",))
        assert "Fig.11" in report.title
        assert "medium" in report.title

    def test_total_cpi_helper(self, runner):
        report = fig10.run(runner=runner, include_ideal=False,
                           workloads=("sphinx3",), scenario="medium")
        value = fig10.total_cpi(report, "sphinx3", "base")
        assert value > 0
        with pytest.raises(KeyError):
            fig10.total_cpi(report, "sphinx3", "nope")


class TestCLITraceAndPlots:
    def test_trace_command_saves(self, tmp_path, capsys):
        from repro.experiments.cli import main
        out_path = tmp_path / "t.npz"
        assert main(["trace", "--workload", "sphinx3",
                     "--references", "2000", "--out", str(out_path)]) == 0
        assert out_path.exists()
        assert "sphinx3" in capsys.readouterr().out

    def test_fig10_plot_renders_stacked_bars(self, capsys):
        from repro.experiments.cli import main
        assert main(["fig10", "--references", "1200", "--no-ideal",
                     "--plot"]) == 0
        out = capsys.readouterr().out
        assert "legend" in out
        assert "|" in out
