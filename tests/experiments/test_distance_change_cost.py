"""Tests for the §3.3 distance-change cost experiment."""

import pytest

from repro.experiments import distance_change_cost
from repro.experiments.paper_data import PAPER_DISTANCE_CHANGE_MS
from repro.mem.frames import FrameRange
from repro.vmos.mapping import MemoryMapping


class TestCostReport:
    def test_matches_paper_calibration_points(self):
        """The per-entry model is calibrated on the d=8 point; the
        paper's own three measurements are not mutually linear (their
        452/71.7/1.7 ms points imply per-entry costs of 0.46/0.58/0.11
        us), so the far points are only checked loosely."""
        report = distance_change_cost.run()
        tolerances = {8: 0.05, 64: 1.0, 512: 4.0}
        for row in report.table:
            distance, _, model, paper = row
            if distance in PAPER_DISTANCE_CHANGE_MS:
                assert model == pytest.approx(
                    paper, rel=tolerances[distance]
                ), distance

    def test_model_decreases_with_distance(self):
        report = distance_change_cost.run()
        models = [row[2] for row in report.table]
        assert models == sorted(models, reverse=True)


class TestRadixSweepCount:
    def test_sweep_visits_every_leaf(self):
        mapping = MemoryMapping()
        mapping.map_run(0, FrameRange(1 << 16, 640))
        visited = distance_change_cost.sweep_visit_count(mapping, 64)
        assert visited == 640
