"""Tests for incremental anchor maintenance (§3.3 mapping updates).

The invariant throughout: after any sequence of note_map/note_unmap
operations, the directory must equal the one built from scratch on the
equivalent mapping (differential testing, plus hypothesis sequences).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MappingError
from repro.mem.frames import FrameRange
from repro.vmos.anchor import AnchorDirectory
from repro.vmos.mapping import MemoryMapping


def directory_equal(a: AnchorDirectory, b: AnchorDirectory) -> bool:
    return (
        a.small == b.small
        and a.anchor_contiguity == b.anchor_contiguity
        and a.huge == b.huge
    )


@pytest.fixture
def mapping():
    m = MemoryMapping()
    m.map_run(0, FrameRange(1000, 64))
    m.map_run(80, FrameRange(5000, 32))
    return m


class TestNoteUnmap:
    def test_matches_rebuild(self, mapping):
        directory = AnchorDirectory.build(mapping, 16, enable_thp=False)
        directory.note_unmap(20)
        mapping.unmap_page(20)
        rebuilt = AnchorDirectory.build(mapping, 16, enable_thp=False)
        assert directory_equal(directory, rebuilt)

    def test_truncates_spanning_anchors(self, mapping):
        directory = AnchorDirectory.build(mapping, 16, enable_thp=False)
        assert directory.anchor_contiguity[0] == 64
        directory.note_unmap(40)
        assert directory.anchor_contiguity[0] == 40
        assert directory.anchor_contiguity[16] == 24
        assert directory.anchor_contiguity[32] == 8
        # The right fragment keeps its own anchor.
        assert directory.anchor_contiguity[48] == 16

    def test_unmap_anchor_page_removes_anchor(self, mapping):
        directory = AnchorDirectory.build(mapping, 16, enable_thp=False)
        directory.note_unmap(16)
        assert 16 not in directory.anchor_contiguity
        assert directory.anchor_contiguity[0] == 16

    def test_unmap_unmapped_rejected(self, mapping):
        directory = AnchorDirectory.build(mapping, 16, enable_thp=False)
        with pytest.raises(MappingError):
            directory.note_unmap(70)

    def test_returns_pfn(self, mapping):
        directory = AnchorDirectory.build(mapping, 16, enable_thp=False)
        assert directory.note_unmap(3) == 1003


class TestNoteMap:
    def test_fills_hole_and_merges_runs(self):
        m = MemoryMapping()
        m.map_run(0, FrameRange(1000, 8))
        m.map_run(9, FrameRange(1009, 7))  # hole at vpn 8 (pfn 1008 free)
        directory = AnchorDirectory.build(m, 8, enable_thp=False)
        assert directory.anchor_contiguity[0] == 8
        directory.note_map(8, 1008)
        assert directory.anchor_contiguity[0] == 16
        assert directory.anchor_contiguity[8] == 8

    def test_matches_rebuild(self, mapping):
        directory = AnchorDirectory.build(mapping, 8, enable_thp=False)
        directory.note_map(70, 9999)
        mapping.map_page(70, 9999)
        rebuilt = AnchorDirectory.build(mapping, 8, enable_thp=False)
        assert directory_equal(directory, rebuilt)

    def test_double_map_rejected(self, mapping):
        directory = AnchorDirectory.build(mapping, 8, enable_thp=False)
        with pytest.raises(MappingError):
            directory.note_map(0, 1)

    def test_map_into_huge_window_rejected(self):
        m = MemoryMapping()
        m.map_run(512, FrameRange(4096, 512))
        directory = AnchorDirectory.build(m, 8)
        with pytest.raises(MappingError):
            directory.note_map(600, 1)


class TestAnchorsSpanning:
    def test_spanning_list(self, mapping):
        directory = AnchorDirectory.build(mapping, 16, enable_thp=False)
        assert sorted(directory.anchors_spanning(40)) == [0, 16, 32]
        assert directory.anchors_spanning(80) == [80]  # run start, aligned
        assert sorted(directory.anchors_spanning(97)) == [80, 96]

    def test_spanning_outside_runs(self, mapping):
        directory = AnchorDirectory.build(mapping, 16, enable_thp=False)
        assert directory.anchors_spanning(70) == []


@st.composite
def update_script(draw):
    """Random map/unmap interleavings over a 96-page window."""
    return draw(st.lists(
        st.tuples(st.booleans(), st.integers(0, 95)), min_size=1, max_size=40
    ))


class TestIncrementalProperty:
    @given(update_script(), st.sampled_from([2, 8, 16, 64]))
    @settings(max_examples=50, deadline=None)
    def test_any_script_matches_rebuild(self, script, distance):
        mapping = MemoryMapping()
        mapping.map_run(0, FrameRange(1000, 48))
        mapping.map_run(50, FrameRange(7000, 40))
        directory = AnchorDirectory.build(mapping, distance, enable_thp=False)
        next_pfn = 20_000
        for do_map, vpn in script:
            if do_map and vpn not in mapping:
                directory.note_map(vpn, next_pfn)
                mapping.map_page(vpn, next_pfn)
                next_pfn += 3  # scattered frames
            elif not do_map and vpn in mapping:
                directory.note_unmap(vpn)
                mapping.unmap_page(vpn)
        rebuilt = AnchorDirectory.build(mapping, distance, enable_thp=False)
        assert directory_equal(directory, rebuilt)

    @given(update_script())
    @settings(max_examples=30, deadline=None)
    def test_translations_stay_correct(self, script):
        mapping = MemoryMapping()
        mapping.map_run(0, FrameRange(1000, 96))
        directory = AnchorDirectory.build(mapping, 16, enable_thp=False)
        next_pfn = 50_000
        for do_map, vpn in script:
            if do_map and vpn not in mapping:
                directory.note_map(vpn, next_pfn)
                mapping.map_page(vpn, next_pfn)
                next_pfn += 11
            elif not do_map and vpn in mapping:
                directory.note_unmap(vpn)
                mapping.unmap_page(vpn)
        for vpn, pfn in mapping.items():
            via = directory.translate_via_anchor(vpn)
            if via is not None:
                assert via == pfn
