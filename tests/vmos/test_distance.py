"""Tests for Algorithm 1 (distance selection) and its cost functions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.params import ANCHOR_DISTANCES
from repro.util.histogram import Histogram
from repro.vmos.distance import (
    cost_table,
    distance_cost,
    inverse_coverage_cost,
    select_distance,
)


class TestDistanceCost:
    def test_single_chunk_exact_cover(self):
        h = Histogram([64])
        assert distance_cost(h, 64) == 1.0        # one anchor
        assert distance_cost(h, 32) == 2.0        # two anchors
        assert distance_cost(h, 128) == 64.0      # 64 4KiB pages

    def test_remainder_uses_huge_pages(self):
        h = Histogram([1024 + 512 + 3])
        # distance 1024: 1 anchor + one 2MiB page + 3 4KiB pages
        assert distance_cost(h, 1024) == 1 + 1 + 3

    def test_frequency_scales_cost(self):
        single = distance_cost(Histogram([32]), 8)
        triple = distance_cost(Histogram([32, 32, 32]), 8)
        assert triple == pytest.approx(3 * single)

    def test_invalid_distance(self):
        with pytest.raises(ValueError):
            distance_cost(Histogram([4]), 0)


class TestSelection:
    def test_power_of_two_chunks_select_their_size(self):
        for k in (2, 8, 64, 1024, 65536):
            histogram = Histogram([k] * 5)
            assert select_distance(histogram) == k

    def test_empty_histogram_selects_smallest(self):
        assert select_distance(Histogram()) == min(ANCHOR_DISTANCES)

    def test_uniform_low_contiguity_selects_4(self):
        # Table 4 'low': chunks uniform in 1..16 -> paper Table 6: d=4.
        histogram = Histogram()
        for size in range(1, 17):
            histogram.add(size, 100)
        assert select_distance(histogram) == 4

    def test_uniform_medium_contiguity_selects_16_to_32(self):
        histogram = Histogram()
        for size in range(1, 513):
            histogram.add(size, 10)
        assert select_distance(histogram) in (16, 32)

    def test_skewed_histogram_selects_large(self):
        # One giant chunk dominating the footprint, plus small noise of
        # *mixed* sizes (an eager-paging profile) -> large distance.
        histogram = Histogram([65536] * 8)
        for size in (1, 2, 3, 5, 7, 11):
            histogram.add(size, 30)
        assert select_distance(histogram) >= 16384

    def test_candidates_respected(self):
        histogram = Histogram([64] * 4)
        assert select_distance(histogram, candidates=(4, 8)) == 8

    def test_no_candidates_rejected(self):
        with pytest.raises(ValueError):
            select_distance(Histogram([4]), candidates=())

    @given(st.lists(st.integers(1, 4096), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_property_selection_minimises_cost(self, sizes):
        histogram = Histogram(sizes)
        picked = select_distance(histogram)
        costs = cost_table(histogram)
        assert costs[picked] == min(costs.values())

    @given(st.lists(st.integers(1, 4096), min_size=1, max_size=30),
           st.integers(2, 5))
    @settings(max_examples=30, deadline=None)
    def test_property_cost_scales_linearly_with_frequency(self, sizes, factor):
        h1 = Histogram(sizes)
        hn = Histogram(sizes * factor)
        for distance in (4, 64, 1024):
            assert distance_cost(hn, distance) == pytest.approx(
                factor * distance_cost(h1, distance)
            )


class TestInverseCoverageVariant:
    def test_weighted_cheaper_than_count_for_anchors(self):
        h = Histogram([1024])
        assert inverse_coverage_cost(h, 1024) < distance_cost(h, 1024)

    def test_pages_cost_identical(self):
        # With distance far above the chunk size everything is 4KiB
        # pages (chunk < 512); both variants agree.
        h = Histogram([100])
        assert inverse_coverage_cost(h, 65536) == distance_cost(h, 65536)

    def test_cost_table_with_variant(self):
        h = Histogram([64] * 3)
        table = cost_table(h, cost_fn=inverse_coverage_cost)
        assert set(table) == set(ANCHOR_DISTANCES)
