"""Tests for multi-region anchors (paper §4.2 future work)."""

import pytest

from repro.mem.frames import FrameRange
from repro.vmos.mapping import MemoryMapping
from repro.vmos.regions import AnchorRegion, RegionTable, partition_regions
from repro.vmos.vma import AllocationSite, layout_vmas


class TestRegionTable:
    def test_contains(self):
        region = AnchorRegion(10, 20, 8)
        assert 10 in region and 19 in region and 20 not in region

    def test_install_and_lookup(self):
        table = RegionTable(capacity=4)
        table.install([AnchorRegion(0, 100, 8), AnchorRegion(100, 200, 64)])
        assert table.distance_for(50, default=2) == 8
        assert table.distance_for(150, default=2) == 64
        assert table.distance_for(500, default=2) == 2

    def test_capacity_enforced(self):
        table = RegionTable(capacity=1)
        with pytest.raises(ValueError):
            table.install([AnchorRegion(0, 10, 2), AnchorRegion(10, 20, 4)])

    def test_overlap_rejected(self):
        table = RegionTable(capacity=4)
        with pytest.raises(ValueError):
            table.install([AnchorRegion(0, 15, 2), AnchorRegion(10, 20, 4)])

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RegionTable(capacity=0)


def bimodal_mapping():
    """A big contiguous VMA and several fragmented small VMAs."""
    vmas = layout_vmas([AllocationSite(4096, 1), AllocationSite(64, 6)])
    mapping = MemoryMapping(vmas=vmas)
    big = vmas[0]
    mapping.map_run(big.start_vpn, FrameRange(1 << 20, big.pages))
    cursor = 1 << 22
    for vma in vmas[1:]:
        for vpn in range(vma.start_vpn, vma.end_vpn):
            if (vpn - vma.start_vpn) % 4 == 0:
                cursor += 9
            mapping.map_page(vpn, cursor)
            cursor += 1
    return mapping, vmas


class TestPartition:
    def test_empty(self):
        assert partition_regions(MemoryMapping(), []) == []

    def test_bimodal_gets_two_distances(self):
        mapping, vmas = bimodal_mapping()
        regions = partition_regions(mapping, vmas, capacity=8)
        distances = {r.distance for r in regions}
        assert len(regions) >= 2
        assert max(distances) >= 4096
        assert min(distances) <= 8

    def test_regions_sorted_disjoint(self):
        mapping, vmas = bimodal_mapping()
        regions = partition_regions(mapping, vmas, capacity=8)
        for a, b in zip(regions, regions[1:]):
            assert a.end_vpn <= b.start_vpn

    def test_capacity_respected(self):
        mapping, vmas = bimodal_mapping()
        regions = partition_regions(mapping, vmas, capacity=2)
        assert len(regions) <= 2

    def test_adjacent_agreeing_vmas_merge(self):
        mapping, vmas = bimodal_mapping()
        regions = partition_regions(mapping, vmas, capacity=8)
        # The six fragmented small VMAs agree on a small distance and
        # should not occupy six separate regions.
        assert len(regions) < len(vmas)
