"""Tests for the six mapping scenario generators (Table 4)."""

import pytest

from repro.params import SCENARIO_ORDER
from repro.util.rng import make_rng
from repro.vmos.contiguity import contiguity_histogram, mean_chunk_pages
from repro.vmos.mapping import MemoryMapping
from repro.vmos.scenarios import (
    build_mapping,
    max_contiguity_mapping,
    synthetic_mapping,
)
from repro.vmos.vma import AllocationSite, layout_vmas


@pytest.fixture
def vmas():
    return layout_vmas([AllocationSite(2048, 1), AllocationSite(32, 4)])


class TestSynthetic:
    def test_chunk_sizes_within_range(self, vmas):
        mapping = synthetic_mapping(vmas, make_rng(1), 4, 64)
        for chunk in mapping.chunks():
            assert chunk.pages <= 64

    def test_all_pages_mapped_uniquely(self, vmas):
        mapping = synthetic_mapping(vmas, make_rng(1), 1, 16)
        assert mapping.mapped_pages == sum(v.pages for v in vmas)
        frames = [pfn for _, pfn in mapping.items()]
        assert len(set(frames)) == len(frames)

    def test_guard_frames_prevent_merging(self, vmas):
        mapping = synthetic_mapping(vmas, make_rng(2), 8, 8)
        sizes = {c.pages for c in mapping.chunks()}
        # Chunks of exactly 8 must not merge into 16+ accidentally.
        assert max(sizes) <= 8

    def test_phase_alignment_for_large_chunks(self, vmas):
        mapping = synthetic_mapping(vmas, make_rng(3), 512, 1024)
        big = [c for c in mapping.chunks() if c.pages >= 512]
        assert big
        for chunk in big:
            assert (chunk.pfn - chunk.vpn) % 512 == 0

    def test_invalid_range(self, vmas):
        with pytest.raises(ValueError):
            synthetic_mapping(vmas, make_rng(0), 0, 4)
        with pytest.raises(ValueError):
            synthetic_mapping(vmas, make_rng(0), 8, 4)


class TestMaxContiguity:
    def test_one_chunk_per_vma(self, vmas):
        mapping = max_contiguity_mapping(vmas, make_rng(1))
        assert len(mapping.chunks()) == len(vmas)

    def test_chunks_match_vmas(self, vmas):
        mapping = max_contiguity_mapping(vmas, make_rng(1))
        sizes = sorted(c.pages for c in mapping.chunks())
        assert sizes == sorted(v.pages for v in vmas)


class TestBuildMapping:
    @pytest.mark.parametrize("scenario", SCENARIO_ORDER)
    def test_every_scenario_maps_everything(self, vmas, scenario):
        mapping = build_mapping(vmas, scenario, seed=5)
        assert mapping.mapped_pages == sum(v.pages for v in vmas)

    def test_unknown_scenario(self, vmas):
        with pytest.raises(ValueError):
            build_mapping(vmas, "bogus")

    def test_deterministic_in_seed(self, vmas):
        a = build_mapping(vmas, "medium", seed=3)
        b = build_mapping(vmas, "medium", seed=3)
        assert dict(a.items()) == dict(b.items())

    def test_seed_changes_mapping(self, vmas):
        a = build_mapping(vmas, "medium", seed=3)
        b = build_mapping(vmas, "medium", seed=4)
        assert dict(a.items()) != dict(b.items())

    def test_contiguity_ordering_across_scenarios(self, vmas):
        means = {
            scenario: mean_chunk_pages(build_mapping(vmas, scenario, seed=7))
            for scenario in ("low", "medium", "high")
        }
        assert means["low"] < means["medium"] < means["high"]

    def test_eager_at_least_as_contiguous_as_demand(self, vmas):
        demand = build_mapping(vmas, "demand", seed=7)
        eager = build_mapping(vmas, "eager", seed=7)
        assert mean_chunk_pages(eager) >= mean_chunk_pages(demand)

    def test_low_scenario_histogram_bounded(self, vmas):
        histogram = contiguity_histogram(build_mapping(vmas, "low", seed=1))
        assert max(size for size, _ in histogram.items()) <= 16
