"""Tests for the AnchorDirectory coverage planner (paper §3.1/§3.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.frames import FrameRange
from repro.params import MAX_CONTIGUITY
from repro.vmos.anchor import AnchorDirectory, distance_change_cost_ms
from repro.vmos.mapping import MemoryMapping


def run_mapping(sizes, vpn0=0, phase_aligned=True):
    """Chunks laid out back to back with gaps; optionally 2MiB-phased."""
    m = MemoryMapping()
    vpn, pfn = vpn0, 4096
    for size in sizes:
        if phase_aligned:
            pfn += (vpn - pfn) % 512
        m.map_run(vpn, FrameRange(pfn, size))
        vpn += size + 1
        pfn += size + 3
    return m


class TestBuild:
    def test_requires_pow2_distance(self):
        with pytest.raises(ValueError):
            AnchorDirectory.build(MemoryMapping(), 3)

    def test_anchor_positions_are_aligned(self):
        directory = AnchorDirectory.build(run_mapping([64]), 8)
        assert directory.anchor_contiguity
        assert all(a % 8 == 0 for a in directory.anchor_contiguity)

    def test_contiguity_counts_run_length(self):
        # Chunk of 64 pages at vpn 0: anchor at 0 sees 64, anchor at 16
        # sees 48, ...
        directory = AnchorDirectory.build(run_mapping([64]), 16, enable_thp=False)
        assert directory.anchor_contiguity[0] == 64
        assert directory.anchor_contiguity[16] == 48
        assert directory.anchor_contiguity[48] == 16

    def test_contiguity_capped_at_max(self):
        mapping = MemoryMapping()
        mapping.map_run(0, FrameRange(0, MAX_CONTIGUITY + 512))
        directory = AnchorDirectory.build(mapping, 65536, enable_thp=False)
        assert directory.anchor_contiguity[0] == MAX_CONTIGUITY

    def test_unaligned_chunk_head_not_anchor_covered(self):
        directory = AnchorDirectory.build(
            run_mapping([32], vpn0=3), 16, enable_thp=False
        )
        # Head pages 3..15 precede the first aligned anchor at 16.
        assert not directory.anchor_covers(3)
        assert directory.anchor_covers(16)
        assert directory.anchor_covers(34)

    def test_translate_via_anchor_arithmetic(self):
        directory = AnchorDirectory.build(run_mapping([64]), 16, enable_thp=False)
        for vpn in (0, 5, 17, 63):
            expected = directory.small[0] + vpn
            assert directory.translate_via_anchor(vpn) == expected

    def test_translate_via_anchor_contiguity_miss(self):
        # Two separate chunks; second chunk's pages must not be served
        # by the first chunk's anchor.
        mapping = MemoryMapping()
        mapping.map_run(0, FrameRange(1000, 8))
        mapping.map_run(8, FrameRange(5000, 8))  # physically discontiguous
        directory = AnchorDirectory.build(mapping, 16, enable_thp=False)
        assert directory.anchor_contiguity[0] == 8
        assert directory.translate_via_anchor(9) is None


class TestHugePromotion:
    def test_thp_first_when_distance_small(self):
        # 2 MiB-aligned 1024-page chunk, distance 8 (< 512): the two
        # aligned windows promote; anchors cover nothing inside them.
        mapping = MemoryMapping()
        mapping.map_run(512, FrameRange(2048, 1024))
        directory = AnchorDirectory.build(mapping, 8)
        assert set(directory.huge) == {512, 1024}
        assert not directory.small

    def test_anchor_first_when_distance_large(self):
        mapping = MemoryMapping()
        mapping.map_run(0, FrameRange(0, 4096))
        directory = AnchorDirectory.build(mapping, 1024)
        # Anchors own everything from vpn 0; no promotion at all.
        assert not directory.huge
        assert directory.anchor_contiguity[0] == 4096

    def test_head_promoted_when_distance_large_and_head_misaligned(self):
        # Chunk begins at 512 but the first 1024-aligned anchor is 1024:
        # the head window [512, 1024) should be a huge page.
        mapping = MemoryMapping()
        mapping.map_run(512, FrameRange(512, 2048))
        directory = AnchorDirectory.build(mapping, 1024)
        assert 512 in directory.huge
        assert 1024 not in directory.huge
        assert directory.anchor_contiguity[1024] == 1536

    def test_phase_mismatch_prevents_promotion(self):
        mapping = MemoryMapping()
        mapping.map_run(512, FrameRange(2048 + 7, 1024))  # PA phase off
        directory = AnchorDirectory.build(mapping, 8)
        assert not directory.huge

    def test_thp_disabled(self):
        mapping = MemoryMapping()
        mapping.map_run(512, FrameRange(2048, 1024))
        directory = AnchorDirectory.build(mapping, 8, enable_thp=False)
        assert not directory.huge
        assert len(directory.small) == 1024


class TestPageTableMaterialisation:
    def test_populate_matches_mapping(self):
        mapping = run_mapping([64, 3, 700])
        directory = AnchorDirectory.build(mapping, 16)
        table = directory.populate_page_table()
        for vpn, pfn in mapping.items():
            assert table.walk(vpn).pfn == pfn

    def test_anchor_bits_present(self):
        mapping = run_mapping([64])
        directory = AnchorDirectory.build(mapping, 16, enable_thp=False)
        table = directory.populate_page_table()
        assert table.walk(0).contiguity == 64

    def test_huge_leaves_present(self):
        mapping = MemoryMapping()
        mapping.map_run(512, FrameRange(2048, 512))
        directory = AnchorDirectory.build(mapping, 8)
        table = directory.populate_page_table()
        assert table.walk(700).huge


class TestAnchorProperties:
    @given(
        st.lists(st.integers(1, 300), min_size=1, max_size=8),
        st.sampled_from([2, 8, 16, 64, 512, 4096]),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_anchor_translation_correct(self, sizes, distance):
        mapping = run_mapping(sizes)
        directory = AnchorDirectory.build(mapping, distance)
        for vpn, pfn in mapping.items():
            via = directory.translate_via_anchor(vpn)
            if via is not None:
                assert via == pfn
            hvpn = vpn & ~511
            if hvpn in directory.huge:
                assert directory.huge[hvpn] + (vpn - hvpn) == pfn
            else:
                assert directory.small[vpn] == pfn

    @given(
        st.lists(st.integers(1, 300), min_size=1, max_size=8),
        st.sampled_from([2, 16, 128]),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_contiguity_never_crosses_chunks(self, sizes, distance):
        mapping = run_mapping(sizes)
        directory = AnchorDirectory.build(mapping, distance)
        for avpn, contiguity in directory.anchor_contiguity.items():
            base = directory.small[avpn]
            for offset in range(contiguity):
                assert directory.small.get(avpn + offset) == base + offset


class TestDistanceChangeCost:
    def test_inverse_linear_in_distance(self):
        footprint = 30 * (1 << 30) // 4096
        c8 = distance_change_cost_ms(footprint, 8)
        c64 = distance_change_cost_ms(footprint, 64)
        assert c8 / c64 == pytest.approx(8, rel=0.05)

    def test_matches_paper_calibration_point(self):
        footprint = 30 * (1 << 30) // 4096
        assert distance_change_cost_ms(footprint, 8) == pytest.approx(452, rel=0.1)

    def test_negative_footprint_rejected(self):
        with pytest.raises(ValueError):
            distance_change_cost_ms(-1, 8)
