"""Tests for the 4-level radix page table."""

import pytest

from repro.errors import MappingError, PageFaultError
from repro.vmos.page_table import PageTable


class TestMapWalk:
    def test_map_and_walk_4k(self):
        table = PageTable()
        table.map_page(0x1234, 0x9999)
        result = table.walk(0x1234)
        assert result.pfn == 0x9999
        assert not result.huge
        assert result.leaf_vpn == 0x1234
        assert result.memory_accesses == 4

    def test_walk_unmapped_faults(self):
        with pytest.raises(PageFaultError):
            PageTable().walk(5)

    def test_lookup_returns_none(self):
        assert PageTable().lookup(5) is None

    def test_double_map_rejected(self):
        table = PageTable()
        table.map_page(7, 1)
        with pytest.raises(MappingError):
            table.map_page(7, 2)

    def test_vpn_range_checked(self):
        with pytest.raises(ValueError):
            PageTable().map_page(1 << 36, 0)
        with pytest.raises(ValueError):
            PageTable().walk(-1)

    def test_map_and_walk_huge(self):
        table = PageTable()
        table.map_huge(512, 2048)
        result = table.walk(512 + 37)
        assert result.huge
        assert result.pfn == 2048 + 37
        assert result.leaf_vpn == 512
        assert result.memory_accesses == 3

    def test_huge_requires_alignment(self):
        table = PageTable()
        with pytest.raises(MappingError):
            table.map_huge(5, 0)
        with pytest.raises(MappingError):
            table.map_huge(512, 5)

    def test_huge_conflicts_with_4k(self):
        table = PageTable()
        table.map_page(513, 1)
        with pytest.raises(MappingError):
            table.map_huge(512, 1024)

    def test_4k_under_huge_rejected(self):
        table = PageTable()
        table.map_huge(512, 1024)
        with pytest.raises(MappingError):
            table.map_page(513, 1)

    def test_unmap(self):
        table = PageTable()
        table.map_page(3, 4)
        table.unmap_page(3)
        assert table.lookup(3) is None
        assert table.leaf_count == 0

    def test_unmap_missing_rejected(self):
        with pytest.raises(MappingError):
            PageTable().unmap_page(3)

    def test_counts(self):
        table = PageTable()
        table.map_page(1, 1)
        table.map_page(2, 2)
        table.map_huge(1024, 4096)
        assert table.leaf_count == 2
        assert table.huge_leaf_count == 1


class TestContiguity:
    def test_set_and_walk_contiguity(self):
        table = PageTable()
        table.map_page(16, 100)
        table.set_contiguity(16, 8)
        assert table.walk(16).contiguity == 8

    def test_set_on_missing_leaf_rejected(self):
        with pytest.raises(MappingError):
            PageTable().set_contiguity(16, 8)

    def test_sweep_sets_aligned_and_clears_others(self):
        table = PageTable()
        for vpn in range(32, 48):
            table.map_page(vpn, 1000 + vpn)
        table.set_contiguity(33, 3)  # stale, unaligned for distance 8
        visited = table.sweep_anchor_contiguity(8, {32: 8, 40: 8})
        assert visited == 16
        assert table.walk(32).contiguity == 8
        assert table.walk(40).contiguity == 8
        assert table.walk(33).contiguity == 0

    def test_sweep_visits_all_leaves(self):
        table = PageTable()
        for vpn in list(range(16)) + list(range(4096, 4104)):
            table.map_page(vpn, vpn)
        assert table.sweep_anchor_contiguity(4, {}) == 24


class TestIteration:
    def test_iter_leaves_sorted(self):
        table = PageTable()
        table.map_page(99, 1)
        table.map_page(3, 2)
        table.map_huge(1024, 8192)
        leaves = list(table.iter_leaves())
        assert leaves == [(3, 2, False), (99, 1, False), (1024, 8192, True)]

    def test_iter_spans_levels(self):
        table = PageTable()
        vpns = [0, 511, 512, 1 << 18, (1 << 27) + 5]
        for vpn in vpns:
            table.map_page(vpn, vpn + 7)
        assert [v for v, _, _ in table.iter_leaves()] == sorted(vpns)
