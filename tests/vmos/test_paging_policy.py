"""Tests for demand and eager paging policies."""

import pytest

from repro.mem.physmem import PhysicalMemory
from repro.util.rng import make_rng
from repro.vmos.contiguity import contiguity_histogram, mean_chunk_pages
from repro.vmos.paging_policy import demand_paging, eager_paging
from repro.vmos.vma import AllocationSite, layout_vmas


@pytest.fixture
def vmas():
    return layout_vmas([AllocationSite(1024, 1), AllocationSite(16, 4)])


class TestDemandPaging:
    def test_maps_every_page(self, vmas):
        memory = PhysicalMemory(1 << 13, "pristine")
        mapping = demand_paging(vmas, memory, make_rng(1))
        assert mapping.mapped_pages == sum(v.pages for v in vmas)
        for vma in vmas:
            for vpn in range(vma.start_vpn, vma.end_vpn):
                assert vpn in mapping

    def test_no_frame_mapped_twice(self, vmas):
        memory = PhysicalMemory(1 << 13, "pristine")
        mapping = demand_paging(vmas, memory, make_rng(1))
        frames = [pfn for _, pfn in mapping.items()]
        assert len(frames) == len(set(frames))

    def test_thp_gives_2mb_chunks_on_pristine_memory(self, vmas):
        memory = PhysicalMemory(1 << 13, "pristine")
        mapping = demand_paging(vmas, memory, make_rng(1), thp=True)
        histogram = contiguity_histogram(mapping)
        assert max(size for size, _ in histogram.items()) >= 512

    def test_thp_disabled_caps_chunks_at_faultaround(self, vmas):
        memory = PhysicalMemory(1 << 13, "pristine")
        mapping = demand_paging(
            vmas, memory, make_rng(1), thp=False, faultaround_pages=4
        )
        # Pristine sequential faults still merge adjacent fault groups,
        # but 2 MiB windows must not appear as aligned promotions;
        # verify no window was allocated as one order-9 block (all
        # chunks come from order-2 blocks, so every 4-page group is
        # separately allocated yet often adjacent).  The robust check:
        # turning THP off never *reduces* the page count and never maps
        # a 2 MiB-aligned window to a 2 MiB-aligned frame run started
        # by a single allocation; we simply check determinism + size.
        assert mapping.mapped_pages == sum(v.pages for v in vmas)

    def test_fragmentation_reduces_contiguity(self, vmas):
        pristine = demand_paging(
            vmas, PhysicalMemory(1 << 13, "pristine", seed=2), make_rng(2)
        )
        heavy = demand_paging(
            vmas, PhysicalMemory(1 << 13, "heavy", seed=2), make_rng(2)
        )
        assert mean_chunk_pages(heavy) < mean_chunk_pages(pristine)

    def test_interleave_reduces_contiguity(self, vmas):
        calm = demand_paging(
            vmas, PhysicalMemory(1 << 13, "pristine"), make_rng(3), interleave=0.0
        )
        busy = demand_paging(
            vmas, PhysicalMemory(1 << 13, "pristine"), make_rng(3), interleave=0.9
        )
        assert mean_chunk_pages(busy) <= mean_chunk_pages(calm)

    def test_validation(self, vmas):
        memory = PhysicalMemory(1 << 13, "pristine")
        with pytest.raises(ValueError):
            demand_paging(vmas, memory, make_rng(0), interleave=2.0)
        with pytest.raises(ValueError):
            demand_paging(vmas, memory, make_rng(0), faultaround_pages=3)


class TestEagerPaging:
    def test_maps_every_page(self, vmas):
        memory = PhysicalMemory(1 << 13, "pristine")
        mapping = eager_paging(vmas, memory)
        assert mapping.mapped_pages == sum(v.pages for v in vmas)

    def test_eager_more_contiguous_than_demand(self, vmas):
        demand = demand_paging(
            vmas,
            PhysicalMemory(1 << 13, "moderate", seed=4),
            make_rng(4),
            interleave=0.5,
        )
        eager = eager_paging(vmas, PhysicalMemory(1 << 13, "moderate", seed=4))
        assert mean_chunk_pages(eager) >= mean_chunk_pages(demand)

    def test_big_region_one_chunk_when_pristine(self):
        vmas = layout_vmas([AllocationSite(1024, 1)])
        mapping = eager_paging(vmas, PhysicalMemory(1 << 13, "pristine"))
        assert len(mapping.chunks()) == 1
