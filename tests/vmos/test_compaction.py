"""Tests for khugepaged-style compaction."""

import pytest

from repro.errors import ReproError
from repro.mem.physmem import PhysicalMemory
from repro.util.rng import make_rng
from repro.vmos.compaction import compact, compactable_windows
from repro.vmos.contiguity import mean_chunk_pages
from repro.vmos.distance import select_distance
from repro.vmos.contiguity import contiguity_histogram
from repro.vmos.paging_policy import demand_paging
from repro.vmos.vma import AllocationSite, layout_vmas


@pytest.fixture
def fragmented_setup():
    """A workload demand-paged on a shattered machine: 4 KiB frames."""
    vmas = layout_vmas([AllocationSite(2048, 1)])
    # Memory only 2x the footprint: order-9 blocks are scarce, so the
    # demand faults land in scattered 4 KiB frames.
    memory = PhysicalMemory(1 << 12, "severe", seed=3)
    mapping = demand_paging(vmas, memory, make_rng(3), thp=True,
                            faultaround_pages=1)
    # The background pressure then eases (co-runners exit), making
    # order-9 blocks available again — the khugepaged trigger moment.
    memory.release_background(1.0, make_rng(4))
    return mapping, memory, vmas


class TestFreeFrame:
    def test_free_frame_of_larger_block(self):
        from repro.mem.buddy import BuddyAllocator
        buddy = BuddyAllocator(64)
        block = buddy.alloc_order(3)
        buddy.free_frame(block.start + 5)
        assert buddy.free_frames == 64 - 7
        buddy.check_invariants()

    def test_free_frame_unallocated_rejected(self):
        from repro.mem.buddy import BuddyAllocator
        buddy = BuddyAllocator(64)
        with pytest.raises(ReproError):
            buddy.free_frame(3)

    def test_free_all_frames_recoalesces(self):
        from repro.mem.buddy import BuddyAllocator
        buddy = BuddyAllocator(64)
        block = buddy.alloc_order(3)
        for pfn in range(block.start, block.end):
            buddy.free_frame(pfn)
        assert buddy.free_frames == 64
        assert buddy.largest_free_order() == 6


class TestCompact:
    def test_candidates_exist_when_fragmented(self, fragmented_setup):
        mapping, _, _ = fragmented_setup
        assert compactable_windows(mapping) > 0

    def test_compaction_preserves_translation_targets(self, fragmented_setup):
        mapping, memory, _ = fragmented_setup
        before = {vpn for vpn, _ in mapping.items()}
        compact(mapping, memory)
        after = {vpn for vpn, _ in mapping.items()}
        assert before == after  # same pages mapped, new frames

    def test_compaction_increases_contiguity(self, fragmented_setup):
        mapping, memory, _ = fragmented_setup
        before = mean_chunk_pages(mapping)
        result = compact(mapping, memory)
        assert result.windows_collapsed > 0
        assert mean_chunk_pages(mapping) > before

    def test_collapsed_windows_are_promotable(self, fragmented_setup):
        mapping, memory, _ = fragmented_setup
        compact(mapping, memory)
        from repro.schemes.base import promote_huge_pages
        huge, _ = promote_huge_pages(mapping)
        assert len(huge) > 0

    def test_distance_selection_reacts(self, fragmented_setup):
        mapping, memory, _ = fragmented_setup
        before = select_distance(contiguity_histogram(mapping))
        compact(mapping, memory)
        after = select_distance(contiguity_histogram(mapping))
        assert after >= before

    def test_max_windows_budget(self, fragmented_setup):
        mapping, memory, _ = fragmented_setup
        result = compact(mapping, memory, max_windows=1)
        assert result.windows_collapsed == 1
        assert result.pages_migrated == 512

    def test_second_pass_converges(self, fragmented_setup):
        mapping, memory, _ = fragmented_setup
        compact(mapping, memory)
        second = compact(mapping, memory)
        assert second.windows_collapsed == 0

    def test_frame_conservation(self, fragmented_setup):
        mapping, memory, _ = fragmented_setup
        compact(mapping, memory)
        memory.buddy.check_invariants()
        frames = [pfn for _, pfn in mapping.items()]
        assert len(frames) == len(set(frames))
