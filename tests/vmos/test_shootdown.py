"""Tests for shootdown and distance-change bookkeeping."""

import pytest

from repro.vmos.shootdown import ShootdownLog


class TestShootdownLog:
    def test_record_unmap_counts_anchors(self):
        log = ShootdownLog(cores=4)
        event = log.record_unmap(pages=64, distance=16)
        assert event.pages == 64
        assert event.anchors == 6  # 64/16 + 2 boundary anchors
        assert event.cores == 4

    def test_total_shootdown_cost_scales_with_events(self):
        log = ShootdownLog(cores=2)
        log.record_unmap(4, 8)
        one = log.total_shootdown_us
        log.record_unmap(4, 8)
        assert log.total_shootdown_us == pytest.approx(2 * one)

    def test_distance_change_cost_accumulates(self):
        log = ShootdownLog()
        first = log.record_distance_change(1 << 20, 64)
        second = log.record_distance_change(1 << 20, 8)
        assert first > 0 and second > first  # smaller distance costs more
        assert log.total_distance_change_ms == pytest.approx(first + second)
        assert [d for d, _ in log.distance_changes] == [64, 8]

    def test_empty_log(self):
        log = ShootdownLog()
        assert log.total_shootdown_us == 0.0
        assert log.total_distance_change_ms == 0.0
