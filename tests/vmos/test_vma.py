"""Tests for VMAs, allocation sites, and the layout engine."""

import pytest

from repro.vmos.vma import VMA, AllocationSite, VMAKind, layout_vmas


class TestVMA:
    def test_bounds(self):
        vma = VMA(100, 10)
        assert vma.end_vpn == 110
        assert 100 in vma and 109 in vma and 110 not in vma

    def test_validation(self):
        with pytest.raises(ValueError):
            VMA(-1, 5)
        with pytest.raises(ValueError):
            VMA(0, 0)


class TestAllocationSite:
    def test_totals(self):
        site = AllocationSite(8, 4)
        assert site.total_pages == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            AllocationSite(0, 1)
        with pytest.raises(ValueError):
            AllocationSite(1, 0)


class TestLayout:
    def test_counts_and_sizes(self):
        vmas = layout_vmas([AllocationSite(8, 3), AllocationSite(64, 1)])
        assert len(vmas) == 4
        assert sum(v.pages for v in vmas) == 88

    def test_no_overlaps_and_guard_gaps(self):
        vmas = layout_vmas([AllocationSite(8, 5), AllocationSite(32, 2)])
        ordered = sorted(vmas, key=lambda v: v.start_vpn)
        for a, b in zip(ordered, ordered[1:]):
            assert b.start_vpn > a.end_vpn  # at least one guard page

    def test_alignment_to_natural_size(self):
        vmas = layout_vmas([AllocationSite(64, 4)])
        for vma in vmas:
            assert vma.start_vpn % 64 == 0

    def test_large_regions_2mb_aligned(self):
        vmas = layout_vmas([AllocationSite(4096, 2)])
        for vma in vmas:
            assert vma.start_vpn % 512 == 0

    def test_kind_and_names(self):
        vmas = layout_vmas([AllocationSite(4, 2, VMAKind.STACK)])
        assert all(v.kind is VMAKind.STACK for v in vmas)
        assert len({v.name for v in vmas}) == 2

    def test_deterministic(self):
        sites = [AllocationSite(8, 3), AllocationSite(128, 1)]
        assert layout_vmas(sites) == layout_vmas(sites)
