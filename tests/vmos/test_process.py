"""Tests for the Process wrapper."""

import pytest

from repro.mem.frames import FrameRange
from repro.vmos.mapping import MemoryMapping
from repro.vmos.process import Process
from repro.vmos.vma import VMA


@pytest.fixture
def process():
    mapping = MemoryMapping(vmas=[VMA(0, 4096)])
    mapping.map_run(0, FrameRange(1 << 16, 1024))
    mapping.map_run(2048, FrameRange(1 << 18, 1024))
    return Process(name="p", mapping=mapping, anchor_distance=8)


class TestProcess:
    def test_footprint(self, process):
        assert process.footprint_pages == 2048

    def test_histogram(self, process):
        histogram = process.histogram()
        assert histogram[1024] == 2

    def test_reselect_changes_distance_and_charges(self, process):
        distance, changed, cost = process.reselect_distance()
        assert changed and cost > 0
        assert process.anchor_distance == distance
        assert distance >= 512

    def test_reselect_stable_second_time(self, process):
        process.reselect_distance()
        _, changed, cost = process.reselect_distance()
        assert not changed and cost == 0.0
        assert len(process.shootdowns.distance_changes) == 1

    def test_anchor_directory_uses_process_distance(self, process):
        directory = process.anchor_directory()
        assert directory.distance == process.anchor_distance
        assert process.anchor_directory(64).distance == 64

    def test_build_page_table_translates(self, process):
        table = process.build_page_table()
        for vpn, pfn in list(process.mapping.items())[:64]:
            assert table.walk(vpn).pfn == pfn
