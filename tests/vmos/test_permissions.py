"""Tests for §3.3 permission handling: protection changes break coalescing."""

import pytest

from repro.errors import MappingError
from repro.mem.frames import FrameRange
from repro.vmos.anchor import AnchorDirectory
from repro.vmos.mapping import DEFAULT_PROT, MemoryMapping

PROT_R = 0b01
PROT_RX = 0b101


@pytest.fixture
def mapping():
    m = MemoryMapping()
    m.map_run(0, FrameRange(1000, 64))
    return m


class TestMappingProtections:
    def test_default_protection(self, mapping):
        assert mapping.protection_of(0) == DEFAULT_PROT

    def test_set_protection_splits_chunks(self, mapping):
        assert len(mapping.chunks()) == 1
        mapping.set_protection(16, 8, PROT_R)
        sizes = [c.pages for c in mapping.chunks()]
        assert sizes == [16, 8, 40]

    def test_revert_protection_remerges(self, mapping):
        mapping.set_protection(16, 8, PROT_R)
        mapping.set_protection(16, 8, DEFAULT_PROT)
        assert len(mapping.chunks()) == 1

    def test_set_protection_unmapped_rejected(self, mapping):
        with pytest.raises(MappingError):
            mapping.set_protection(63, 2, PROT_R)

    def test_map_with_protection(self):
        m = MemoryMapping()
        m.map_page(0, 10)
        m.map_page(1, 11, prot=PROT_RX)
        m.map_page(2, 12)
        assert len(m.chunks()) == 3

    def test_unmap_clears_protection(self, mapping):
        mapping.set_protection(5, 1, PROT_R)
        mapping.unmap_page(5)
        mapping.map_page(5, 1005)
        assert mapping.protection_of(5) == DEFAULT_PROT


class TestAnchorsRespectProtections:
    def test_anchor_contiguity_stops_at_protection_change(self, mapping):
        mapping.set_protection(20, 4, PROT_R)
        directory = AnchorDirectory.build(mapping, 16, enable_thp=False)
        # Anchor at 16: run [16, 20) only.
        assert directory.anchor_contiguity[16] == 4
        # Anchor at 0 stops at 16? No: [0, 20) is uniform... the change
        # is at 20, so anchor 0 covers 20 pages.
        assert directory.anchor_contiguity[0] == 20

    def test_translate_not_served_across_protection_boundary(self, mapping):
        mapping.set_protection(20, 4, PROT_R)
        directory = AnchorDirectory.build(mapping, 16, enable_thp=False)
        # vpn 21 has prot R; its anchor (16) covers only [16, 20).
        assert directory.translate_via_anchor(21) is None
        # vpn 36 (back to default prot, run [24, 64)): anchor at 32.
        assert directory.translate_via_anchor(36) == 1036

    def test_note_protect_incremental_matches_rebuild(self, mapping):
        directory = AnchorDirectory.build(mapping, 16, enable_thp=False)
        directory.note_protect(20, PROT_R)
        mapping.set_protection(20, 1, PROT_R)
        rebuilt = AnchorDirectory.build(mapping, 16, enable_thp=False)
        assert directory.anchor_contiguity == rebuilt.anchor_contiguity

    def test_note_protect_revert_matches_rebuild(self, mapping):
        directory = AnchorDirectory.build(mapping, 16, enable_thp=False)
        directory.note_protect(20, PROT_R)
        directory.note_protect(20, DEFAULT_PROT)
        rebuilt = AnchorDirectory.build(mapping, 16, enable_thp=False)
        assert directory.anchor_contiguity == rebuilt.anchor_contiguity
