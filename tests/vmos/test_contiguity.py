"""Tests for contiguity histograms and CDFs."""

import pytest

from repro.mem.frames import FrameRange
from repro.vmos.contiguity import (
    contiguity_cdf,
    contiguity_histogram,
    coverage_at_or_below,
    mean_chunk_pages,
)
from repro.vmos.mapping import MemoryMapping


def make_mapping(sizes: list[int]) -> MemoryMapping:
    m = MemoryMapping()
    vpn, pfn = 0, 1000
    for size in sizes:
        m.map_run(vpn, FrameRange(pfn, size))
        vpn += size + 1
        pfn += size + 3
    return m


class TestHistogram:
    def test_counts_chunks(self):
        h = contiguity_histogram(make_mapping([4, 4, 16]))
        assert h[4] == 2
        assert h[16] == 1
        assert h.total_weight == 24

    def test_empty_mapping(self):
        assert not contiguity_histogram(MemoryMapping())

    def test_mean_chunk(self):
        assert mean_chunk_pages(make_mapping([4, 4, 16])) == pytest.approx(8.0)
        assert mean_chunk_pages(MemoryMapping()) == 0.0


class TestCDF:
    def test_cdf_weighted(self):
        cdf = dict(contiguity_cdf(make_mapping([4, 12])))
        assert cdf[4] == pytest.approx(0.25)
        assert cdf[12] == pytest.approx(1.0)

    def test_coverage_at_or_below(self):
        m = make_mapping([2, 2, 12])
        assert coverage_at_or_below(m, 2) == pytest.approx(4 / 16)
        assert coverage_at_or_below(m, 100) == pytest.approx(1.0)
        assert coverage_at_or_below(MemoryMapping(), 4) == 0.0
