"""Tests for MemoryMapping and its chunk extraction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MappingError, PageFaultError
from repro.mem.frames import FrameRange
from repro.vmos.mapping import MemoryMapping


class TestMappingBasics:
    def test_map_translate(self):
        m = MemoryMapping()
        m.map_page(10, 20)
        assert m.translate(10) == 20
        assert m.get(11) is None
        assert 10 in m and 11 not in m

    def test_double_map_rejected(self):
        m = MemoryMapping()
        m.map_page(1, 1)
        with pytest.raises(MappingError):
            m.map_page(1, 2)

    def test_translate_unmapped_faults(self):
        with pytest.raises(PageFaultError):
            MemoryMapping().translate(5)

    def test_map_run(self):
        m = MemoryMapping()
        m.map_run(100, FrameRange(500, 4))
        assert [m.translate(100 + i) for i in range(4)] == [500, 501, 502, 503]

    def test_unmap(self):
        m = MemoryMapping()
        m.map_page(1, 9)
        assert m.unmap_page(1) == 9
        assert 1 not in m
        with pytest.raises(MappingError):
            m.unmap_page(1)

    def test_items_sorted(self):
        m = MemoryMapping()
        m.map_page(5, 50)
        m.map_page(1, 10)
        assert list(m.items()) == [(1, 10), (5, 50)]

    def test_as_dict_is_copy(self):
        m = MemoryMapping()
        m.map_page(1, 2)
        d = m.as_dict()
        d[1] = 99
        assert m.translate(1) == 2


class TestChunks:
    def test_single_chunk(self):
        m = MemoryMapping()
        m.map_run(10, FrameRange(100, 5))
        chunks = m.chunks()
        assert len(chunks) == 1
        assert (chunks[0].vpn, chunks[0].pfn, chunks[0].pages) == (10, 100, 5)

    def test_physical_break_splits(self):
        m = MemoryMapping()
        m.map_page(10, 100)
        m.map_page(11, 200)
        assert len(m.chunks()) == 2

    def test_virtual_gap_splits(self):
        m = MemoryMapping()
        m.map_page(10, 100)
        m.map_page(12, 101)
        assert len(m.chunks()) == 2

    def test_chunks_cache_invalidated_on_mutation(self):
        m = MemoryMapping()
        m.map_run(0, FrameRange(10, 4))
        assert len(m.chunks()) == 1
        m.map_page(4, 999)
        assert len(m.chunks()) == 2
        m.unmap_page(4)
        assert len(m.chunks()) == 1

    def test_chunk_covering(self):
        m = MemoryMapping()
        m.map_run(10, FrameRange(100, 5))
        chunk = m.chunk_covering(12)
        assert chunk is not None and chunk.vpn == 10
        assert m.chunk_covering(99) is None

    def test_descending_physical_not_merged(self):
        m = MemoryMapping()
        m.map_page(10, 101)
        m.map_page(11, 100)
        assert len(m.chunks()) == 2

    @given(st.lists(st.integers(1, 12), min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_property_chunks_partition_pages(self, sizes):
        m = MemoryMapping()
        vpn, pfn = 0, 10_000
        for size in sizes:
            m.map_run(vpn, FrameRange(pfn, size))
            vpn += size + 1   # virtual gap
            pfn += size + 7   # physical gap
        chunks = m.chunks()
        assert sum(c.pages for c in chunks) == m.mapped_pages
        assert [c.pages for c in chunks] == sizes
        # Every page translates consistently with its chunk.
        for chunk in chunks:
            for i in range(chunk.pages):
                assert m.translate(chunk.vpn + i) == chunk.pfn + i
