"""Tests for MemoryMapping and its chunk extraction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MappingError, PageFaultError
from repro.mem.frames import FrameRange
from repro.vmos.mapping import MemoryMapping


class TestMappingBasics:
    def test_map_translate(self):
        m = MemoryMapping()
        m.map_page(10, 20)
        assert m.translate(10) == 20
        assert m.get(11) is None
        assert 10 in m and 11 not in m

    def test_double_map_rejected(self):
        m = MemoryMapping()
        m.map_page(1, 1)
        with pytest.raises(MappingError):
            m.map_page(1, 2)

    def test_translate_unmapped_faults(self):
        with pytest.raises(PageFaultError):
            MemoryMapping().translate(5)

    def test_map_run(self):
        m = MemoryMapping()
        m.map_run(100, FrameRange(500, 4))
        assert [m.translate(100 + i) for i in range(4)] == [500, 501, 502, 503]

    def test_unmap(self):
        m = MemoryMapping()
        m.map_page(1, 9)
        assert m.unmap_page(1) == 9
        assert 1 not in m
        with pytest.raises(MappingError):
            m.unmap_page(1)

    def test_items_sorted(self):
        m = MemoryMapping()
        m.map_page(5, 50)
        m.map_page(1, 10)
        assert list(m.items()) == [(1, 10), (5, 50)]

    def test_as_dict_shim_is_gone(self):
        # Deprecated in PR 1, internal callers removed in PR 3, shim
        # deleted in PR 5; the deprecation lint would flag it forever.
        assert not hasattr(MemoryMapping, "as_dict")


class TestChunks:
    def test_single_chunk(self):
        m = MemoryMapping()
        m.map_run(10, FrameRange(100, 5))
        chunks = m.chunks()
        assert len(chunks) == 1
        assert (chunks[0].vpn, chunks[0].pfn, chunks[0].pages) == (10, 100, 5)

    def test_physical_break_splits(self):
        m = MemoryMapping()
        m.map_page(10, 100)
        m.map_page(11, 200)
        assert len(m.chunks()) == 2

    def test_virtual_gap_splits(self):
        m = MemoryMapping()
        m.map_page(10, 100)
        m.map_page(12, 101)
        assert len(m.chunks()) == 2

    def test_chunks_cache_invalidated_on_mutation(self):
        m = MemoryMapping()
        m.map_run(0, FrameRange(10, 4))
        assert len(m.chunks()) == 1
        m.map_page(4, 999)
        assert len(m.chunks()) == 2
        m.unmap_page(4)
        assert len(m.chunks()) == 1

    def test_chunk_covering(self):
        m = MemoryMapping()
        m.map_run(10, FrameRange(100, 5))
        chunk = m.chunk_covering(12)
        assert chunk is not None and chunk.vpn == 10
        assert m.chunk_covering(99) is None

    def test_descending_physical_not_merged(self):
        m = MemoryMapping()
        m.map_page(10, 101)
        m.map_page(11, 100)
        assert len(m.chunks()) == 2

    @given(st.lists(st.integers(1, 12), min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_property_chunks_partition_pages(self, sizes):
        m = MemoryMapping()
        vpn, pfn = 0, 10_000
        for size in sizes:
            m.map_run(vpn, FrameRange(pfn, size))
            vpn += size + 1   # virtual gap
            pfn += size + 7   # physical gap
        chunks = m.chunks()
        assert sum(c.pages for c in chunks) == m.mapped_pages
        assert [c.pages for c in chunks] == sizes
        # Every page translates consistently with its chunk.
        for chunk in chunks:
            for i in range(chunk.pages):
                assert m.translate(chunk.vpn + i) == chunk.pfn + i


class TestFrozenMapping:
    @staticmethod
    def _fragmented():
        m = MemoryMapping()
        m.map_run(10, FrameRange(100, 5))
        m.map_run(20, FrameRange(200, 8))
        m.map_run(28, FrameRange(300, 3))   # VA-adjacent, PA break
        m.map_run(40, FrameRange(311, 4))
        m.set_protection(22, 2, 0b01)       # protection island mid-run
        return m

    def test_translate_block_matches_scalar(self):
        import numpy as np

        m = self._fragmented()
        frozen = m.frozen()
        queries = np.arange(0, 60, dtype=np.int64)
        pfns, found = frozen.translate_block(queries)
        for q, p, f in zip(queries.tolist(), pfns.tolist(), found.tolist()):
            assert f == (q in m)
            if f:
                assert p == m.translate(q)
        assert frozen.mask(queries).tolist() == found.tolist()
        assert not frozen.contains_all(queries)
        assert frozen.contains_all(queries[found])

    def test_chunks_split_at_protection_runs_do_not(self):
        import numpy as np

        m = self._fragmented()
        frozen = m.frozen()
        # chunk_* mirrors mapping.chunks() (protection-aware) ...
        chunks = m.chunks()
        assert frozen.chunk_vpn.tolist() == [c.vpn for c in chunks]
        assert frozen.chunk_pages.tolist() == [c.pages for c in chunks]
        # ... while run_* ignores protection: [20, 28) stays one run.
        runs = dict(zip(frozen.run_vpn.tolist(), frozen.run_pages.tolist()))
        assert runs[20] == 8
        assert any(c.vpn == 22 for c in chunks)
        # Interval lookups agree with membership.
        probe = np.asarray([10, 14, 15, 21, 27, 28, 41, 99], dtype=np.int64)
        run_idx = frozen.run_of(probe)
        chunk_idx = frozen.chunk_of(probe)
        for q, r, c in zip(probe.tolist(), run_idx.tolist(), chunk_idx.tolist()):
            assert (r >= 0) == (q in m)
            assert (c >= 0) == (q in m)
            if c >= 0:
                assert m.chunk_covering(q).vpn == int(frozen.chunk_vpn[c])

    def test_page_table_is_live_reference(self):
        m = self._fragmented()
        frozen = m.frozen()
        assert frozen.page_table is m._map
        assert frozen.get(10) == 100
        assert 10 in frozen and 9 not in frozen
        assert len(frozen) == m.mapped_pages

    def test_empty_mapping(self):
        import numpy as np

        frozen = MemoryMapping().frozen()
        queries = np.asarray([1, 2], dtype=np.int64)
        assert not frozen.contains_all(queries)
        assert frozen.mask(queries).tolist() == [False, False]
        assert frozen.run_of(queries).tolist() == [-1, -1]
        assert len(frozen) == 0
