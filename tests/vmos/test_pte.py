"""Tests for the packed PTE layout (paper Fig. 4)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.params import MAX_CONTIGUITY
from repro.vmos.pte import (
    PTEFlags,
    make_pte,
    pte_contiguity,
    pte_flags,
    pte_huge,
    pte_pfn,
    pte_present,
    with_contiguity,
)


class TestPTE:
    def test_roundtrip_fields(self):
        pte = make_pte(0x1234, PTEFlags.PRESENT | PTEFlags.WRITABLE, 77)
        assert pte_pfn(pte) == 0x1234
        assert pte_flags(pte) == PTEFlags.PRESENT | PTEFlags.WRITABLE
        assert pte_contiguity(pte) == 77

    def test_default_flags(self):
        pte = make_pte(1)
        assert pte_present(pte)
        assert not pte_huge(pte)

    def test_huge_flag(self):
        pte = make_pte(512, PTEFlags.PRESENT | PTEFlags.HUGE)
        assert pte_huge(pte)

    def test_pfn_range_checked(self):
        with pytest.raises(ValueError):
            make_pte(-1)
        with pytest.raises(ValueError):
            make_pte(1 << 40)

    def test_contiguity_range_checked(self):
        with pytest.raises(ValueError):
            make_pte(0, contiguity=-1)
        with pytest.raises(ValueError):
            make_pte(0, contiguity=MAX_CONTIGUITY + 1)

    def test_max_contiguity_representable(self):
        pte = make_pte(9, contiguity=MAX_CONTIGUITY)
        assert pte_contiguity(pte) == MAX_CONTIGUITY

    def test_with_contiguity_preserves_rest(self):
        pte = make_pte(0x777, PTEFlags.PRESENT | PTEFlags.DIRTY, 5)
        updated = with_contiguity(pte, 321)
        assert pte_contiguity(updated) == 321
        assert pte_pfn(updated) == 0x777
        assert pte_flags(updated) == pte_flags(pte)

    def test_with_contiguity_clears(self):
        pte = make_pte(1, contiguity=42)
        assert pte_contiguity(with_contiguity(pte, 0)) == 0

    @given(
        st.integers(0, (1 << 40) - 1),
        st.integers(0, MAX_CONTIGUITY),
        st.sampled_from([
            PTEFlags.PRESENT,
            PTEFlags.PRESENT | PTEFlags.WRITABLE,
            PTEFlags.PRESENT | PTEFlags.USER | PTEFlags.ACCESSED,
        ]),
    )
    def test_property_roundtrip(self, pfn, contiguity, flags):
        pte = make_pte(pfn, flags, contiguity)
        assert pte_pfn(pte) == pfn
        assert pte_contiguity(pte) == contiguity
        assert pte_flags(pte) == flags
