"""Tests for nested (virtualized) translation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PageFaultError
from repro.mem.frames import FrameRange
from repro.params import DEFAULT_MACHINE
from repro.virt.nested import (
    NESTED_LATENCY,
    NestedAddressSpace,
    build_host_mapping,
    nested_machine,
)
from repro.vmos.contiguity import mean_chunk_pages
from repro.vmos.mapping import MemoryMapping
from repro.vmos.scenarios import build_mapping
from repro.vmos.vma import AllocationSite, layout_vmas


def simple_guest():
    guest = MemoryMapping(vmas=[])
    guest.map_run(0, FrameRange(1000, 64))
    return guest


class TestComposition:
    def test_translate_composes(self):
        guest = simple_guest()
        host = MemoryMapping()
        host.map_run(1000, FrameRange(9000, 64))
        nested = NestedAddressSpace(guest, host)
        assert nested.translate(0) == 9000
        assert nested.translate(63) == 9063

    def test_compose_matches_translate(self):
        guest = simple_guest()
        host = MemoryMapping()
        host.map_run(1000, FrameRange(9000, 64))
        composed = NestedAddressSpace(guest, host).compose()
        for gvpn in range(64):
            assert composed.translate(gvpn) == 9000 + gvpn

    def test_missing_host_page_faults(self):
        guest = simple_guest()
        host = MemoryMapping()
        host.map_run(1000, FrameRange(9000, 32))  # only half covered
        nested = NestedAddressSpace(guest, host)
        with pytest.raises(PageFaultError):
            nested.compose()
        with pytest.raises(PageFaultError):
            nested.translate(40)

    def test_host_fragmentation_splits_guest_chunk(self):
        guest = simple_guest()   # one 64-page guest chunk
        host = MemoryMapping()
        host.map_run(1000, FrameRange(9000, 32))
        host.map_run(1032, FrameRange(50_000, 32))  # physical break
        composed = NestedAddressSpace(guest, host).compose()
        assert len(composed.chunks()) == 2

    def test_guest_protections_carried(self):
        guest = simple_guest()
        guest.set_protection(8, 4, 0b01)
        host = MemoryMapping()
        host.map_run(1000, FrameRange(9000, 64))
        composed = NestedAddressSpace(guest, host).compose()
        assert composed.protection_of(8) == 0b01
        assert len(composed.chunks()) == 3

    @given(st.integers(1, 6), st.sampled_from(["low", "medium", "max"]),
           st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_property_guard_separated_host_never_merges_guest_chunks(
        self, guest_pieces, host_scenario, seed
    ):
        """With guard-separated host placement (build_host_mapping), a
        guest chunk boundary survives composition: the boundary's two
        guest-physical pages live in different host regions, which are
        never physically adjacent."""
        pages = 60
        guest = MemoryMapping()
        cursor = 5000
        for i in range(guest_pieces):
            lo = i * pages // guest_pieces
            hi = (i + 1) * pages // guest_pieces
            guest.map_run(lo, FrameRange(cursor, hi - lo))
            cursor += (hi - lo) + 3
        host = build_host_mapping(guest, host_scenario, seed=seed)
        composed = NestedAddressSpace(guest, host).compose()
        assert len(composed.chunks()) >= len(guest.chunks())

    def test_host_can_heal_guest_fragmentation(self):
        """A counter-intuitive corollary pinned down here: the host may
        map discontiguous guest-physical pages to adjacent frames, so
        composition can MERGE guest chunks.  (build_host_mapping never
        does this - its regions are guard-separated - but the hardware
        semantics allow it.)"""
        guest = MemoryMapping()
        guest.map_run(0, FrameRange(1000, 4))
        guest.map_run(4, FrameRange(2000, 4))  # guest-physical break
        host = MemoryMapping()
        host.map_run(1000, FrameRange(7000, 4))
        host.map_run(2000, FrameRange(7004, 4))  # healed in host space
        composed = NestedAddressSpace(guest, host).compose()
        assert len(composed.chunks()) == 1


class TestHostMappingBuilder:
    def test_covers_guest_physical_pages(self):
        vmas = layout_vmas([AllocationSite(512, 2)])
        guest = build_mapping(vmas, "medium", seed=3)
        host = build_host_mapping(guest, "medium", seed=4)
        for _, gpfn in guest.items():
            assert gpfn in host

    def test_host_scenario_controls_composed_contiguity(self):
        vmas = layout_vmas([AllocationSite(2048, 1)])
        guest = build_mapping(vmas, "max", seed=3)
        contiguous_host = build_host_mapping(guest, "max", seed=4)
        fragmented_host = build_host_mapping(guest, "low", seed=4)
        big = NestedAddressSpace(guest, contiguous_host).compose()
        small = NestedAddressSpace(guest, fragmented_host).compose()
        assert mean_chunk_pages(small) < mean_chunk_pages(big)

    def test_empty_guest_rejected(self):
        with pytest.raises(ValueError):
            build_host_mapping(MemoryMapping(), "max")


class TestNestedMachine:
    def test_latency_override(self):
        machine = nested_machine()
        assert machine.latency.page_walk == 300
        assert machine.latency.l2_hit == DEFAULT_MACHINE.latency.l2_hit
        assert NESTED_LATENCY.page_walk == 300

    def test_schemes_run_on_composition(self):
        from repro.schemes import make_scheme, scheme_names
        from repro.sim.engine import simulate

        vmas = layout_vmas([AllocationSite(512, 1)])
        guest = build_mapping(vmas, "medium", seed=5)
        host = build_host_mapping(guest, "medium", seed=6)
        composed = NestedAddressSpace(guest, host).compose()
        workload_vpns = [vpn for vpn, _ in composed.items()][::3]
        import numpy as np

        from repro.sim.trace import Trace
        trace = Trace(np.asarray(workload_vpns * 5, dtype=np.int64), 1000)
        machine = nested_machine()
        for name in scheme_names():
            result = simulate(make_scheme(name, composed, machine), trace)
            result.stats.check_conservation()
            # A walk now costs 300 cycles.
            if result.stats.walks and not result.stats.walk_pt_accesses:
                assert result.stats.cycles_walk == result.stats.walks * 300
