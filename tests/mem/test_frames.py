"""Tests for FrameRange and range coalescing."""

import pytest

from repro.mem.frames import FrameRange, coalesce_ranges


class TestFrameRange:
    def test_basic_properties(self):
        r = FrameRange(10, 4)
        assert r.end == 14
        assert 10 in r and 13 in r
        assert 14 not in r and 9 not in r

    def test_validation(self):
        with pytest.raises(ValueError):
            FrameRange(-1, 1)
        with pytest.raises(ValueError):
            FrameRange(0, 0)

    def test_overlaps(self):
        assert FrameRange(0, 4).overlaps(FrameRange(3, 4))
        assert not FrameRange(0, 4).overlaps(FrameRange(4, 4))
        assert FrameRange(2, 10).overlaps(FrameRange(5, 1))

    def test_split(self):
        head, tail = FrameRange(8, 8).split(3)
        assert head == FrameRange(8, 3)
        assert tail == FrameRange(11, 5)

    def test_split_bounds(self):
        with pytest.raises(ValueError):
            FrameRange(0, 4).split(0)
        with pytest.raises(ValueError):
            FrameRange(0, 4).split(4)

    def test_ordering(self):
        assert FrameRange(1, 2) < FrameRange(2, 1)


class TestCoalesce:
    def test_empty(self):
        assert coalesce_ranges([]) == []

    def test_adjacent_merge(self):
        merged = coalesce_ranges([FrameRange(0, 4), FrameRange(4, 4)])
        assert merged == [FrameRange(0, 8)]

    def test_gap_preserved(self):
        merged = coalesce_ranges([FrameRange(0, 4), FrameRange(5, 4)])
        assert len(merged) == 2

    def test_unsorted_input(self):
        merged = coalesce_ranges([FrameRange(8, 2), FrameRange(0, 2), FrameRange(2, 6)])
        assert merged == [FrameRange(0, 10)]

    def test_contained_range(self):
        merged = coalesce_ranges([FrameRange(0, 10), FrameRange(2, 3)])
        assert merged == [FrameRange(0, 10)]
