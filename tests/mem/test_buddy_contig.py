"""Tests for the alloc_contig_range-style buddy primitives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OutOfMemoryError, ReproError
from repro.mem.buddy import BuddyAllocator


class TestReserveFreeInRange:
    def test_reserves_all_free_frames(self):
        buddy = BuddyAllocator(64)
        claimed = buddy.reserve_free_in_range(8, 24)
        assert sum(r.count for r in claimed) == 16
        assert buddy.free_frames == 48
        buddy.check_invariants()

    def test_skips_allocated_frames(self):
        buddy = BuddyAllocator(64)
        held = buddy.alloc_order(3)  # [0, 8)
        claimed = buddy.reserve_free_in_range(0, 16)
        assert sum(r.count for r in claimed) == 8
        assert all(r.start >= 8 for r in claimed)
        buddy.free(held)
        buddy.check_invariants()

    def test_splits_spanning_blocks(self):
        buddy = BuddyAllocator(64)  # one order-6 block
        buddy.reserve_free_in_range(20, 28)
        # Frames outside stay free; an order-0 alloc must come from
        # outside the reserved window (min-start picks frame 0).
        block = buddy.alloc_order(0)
        assert not 20 <= block.start < 28
        buddy.check_invariants()

    def test_range_validation(self):
        buddy = BuddyAllocator(64)
        with pytest.raises(ValueError):
            buddy.reserve_free_in_range(10, 10)
        with pytest.raises(ValueError):
            buddy.reserve_free_in_range(-1, 8)
        with pytest.raises(ValueError):
            buddy.reserve_free_in_range(0, 128)

    @given(st.integers(0, 56), st.integers(1, 32))
    @settings(max_examples=40, deadline=None)
    def test_property_invariants_hold(self, start, length):
        end = min(start + length, 64)
        buddy = BuddyAllocator(64)
        pins = [buddy.alloc_order(0) for _ in range(10)]
        for pin in pins[::2]:
            buddy.free(pin)
        before_free = buddy.free_frames
        claimed = buddy.reserve_free_in_range(start, end)
        assert buddy.free_frames == before_free - sum(r.count for r in claimed)
        buddy.check_invariants()
        # Every claimed frame lies inside the range.
        for block in claimed:
            assert start <= block.start and block.end <= end


class TestConsolidate:
    def test_fuses_fragmented_ownership(self):
        buddy = BuddyAllocator(64)
        buddy.reserve_free_in_range(0, 16)
        block = buddy.consolidate(0, 4)
        assert block.count == 16
        buddy.free(block)
        assert buddy.free_frames == 64
        buddy.check_invariants()

    def test_requires_alignment(self):
        buddy = BuddyAllocator(64)
        buddy.reserve_free_in_range(0, 64)
        with pytest.raises(ValueError):
            buddy.consolidate(4, 3)

    def test_requires_full_coverage(self):
        buddy = BuddyAllocator(64)
        buddy.reserve_free_in_range(0, 12)  # [12, 16) still free
        with pytest.raises(ReproError):
            buddy.consolidate(0, 4)

    def test_rejects_crossing_allocations(self):
        buddy = BuddyAllocator(64)
        buddy.alloc_order(5)  # [0, 32) one block crossing [0, 16)
        with pytest.raises(ReproError):
            buddy.consolidate(0, 4)


class TestIsolateAndFreeFrame:
    def test_isolate_keeps_frames_allocated(self):
        buddy = BuddyAllocator(64)
        block = buddy.alloc_order(2)
        buddy.isolate_frame(block.start + 1)
        assert buddy.allocated_frames == 4
        buddy.check_invariants()
        # Each frame can now be freed individually.
        for pfn in range(block.start, block.end):
            buddy.free_frame(pfn) if pfn != block.start + 1 else buddy.free(
                type(block)(block.start + 1, 1)
            )
        assert buddy.free_frames == 64

    def test_isolate_unallocated_rejected(self):
        with pytest.raises(ReproError):
            BuddyAllocator(64).isolate_frame(0)

    def test_free_frame_then_realloc(self):
        buddy = BuddyAllocator(64)
        buddy.alloc_order(6)
        buddy.free_frame(13)
        block = buddy.alloc_order(0)
        assert block.start == 13
        with pytest.raises(OutOfMemoryError):
            buddy.alloc_order(0)
