"""Unit and property tests for the buddy allocator.

The property tests drive random alloc/free sequences and assert the
DESIGN.md invariants: natural alignment, no overlap, frame conservation,
and full coalescing after everything is freed.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OutOfMemoryError, ReproError
from repro.mem.buddy import BuddyAllocator, aligned_decompose
from repro.mem.frames import FrameRange
from repro.util.rng import make_rng


class TestAlignedDecompose:
    def test_exact_block(self):
        assert aligned_decompose(0, 8, 10) == [(0, 3)]

    def test_unaligned_start(self):
        blocks = aligned_decompose(3, 8, 10)
        assert blocks == [(3, 0), (4, 2)]

    def test_covers_exactly(self):
        for start, end in [(0, 7), (5, 21), (1, 2), (13, 64)]:
            blocks = aligned_decompose(start, end, 12)
            covered = sorted(
                f for s, o in blocks for f in range(s, s + (1 << o))
            )
            assert covered == list(range(start, end))

    @given(st.integers(0, 500), st.integers(1, 300))
    def test_property_alignment_and_coverage(self, start, length):
        blocks = aligned_decompose(start, start + length, 20)
        total = 0
        for s, o in blocks:
            assert s % (1 << o) == 0
            total += 1 << o
        assert total == length


class TestBuddyBasics:
    def test_initial_state(self):
        b = BuddyAllocator(64)
        assert b.free_frames == 64
        assert b.allocated_frames == 0
        assert b.largest_free_order() == 6

    def test_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            BuddyAllocator(100)

    def test_alloc_smallest(self):
        b = BuddyAllocator(16)
        block = b.alloc_order(0)
        assert block.count == 1
        assert b.free_frames == 15

    def test_alloc_aligned(self):
        b = BuddyAllocator(256)
        for order in (0, 1, 3, 4):
            block = b.alloc_order(order)
            assert block.start % block.count == 0

    def test_alloc_whole_memory(self):
        b = BuddyAllocator(32)
        block = b.alloc_order(5)
        assert block == FrameRange(0, 32)
        with pytest.raises(OutOfMemoryError):
            b.alloc_order(0)

    def test_alloc_order_out_of_range(self):
        b = BuddyAllocator(16)
        with pytest.raises(ValueError):
            b.alloc_order(5)
        with pytest.raises(ValueError):
            b.alloc_order(-1)

    def test_free_restores(self):
        b = BuddyAllocator(64)
        block = b.alloc_order(3)
        b.free(block)
        assert b.free_frames == 64
        assert b.largest_free_order() == 6

    def test_free_coalesces_buddies(self):
        b = BuddyAllocator(8)
        blocks = [b.alloc_order(0) for _ in range(8)]
        for block in blocks:
            b.free(block)
        assert b.largest_free_order() == 3

    def test_double_free_rejected(self):
        b = BuddyAllocator(16)
        block = b.alloc_order(1)
        b.free(block)
        with pytest.raises(ReproError):
            b.free(block)

    def test_free_wrong_size_rejected(self):
        b = BuddyAllocator(16)
        b.alloc_order(2)
        with pytest.raises(ReproError):
            b.free(FrameRange(0, 2))

    def test_split_produces_disjoint_blocks(self):
        b = BuddyAllocator(16)
        blocks = [b.alloc_order(0) for _ in range(16)]
        starts = {blk.start for blk in blocks}
        assert len(starts) == 16


class TestAllocPages:
    def test_exact_power(self):
        b = BuddyAllocator(64)
        ranges = b.alloc_pages(16)
        assert sum(r.count for r in ranges) == 16
        assert len(ranges) == 1

    def test_non_power(self):
        b = BuddyAllocator(64)
        ranges = b.alloc_pages(13)
        assert sum(r.count for r in ranges) == 13
        assert b.free_frames == 51
        b.check_invariants()

    def test_kept_prefix_contiguous(self):
        b = BuddyAllocator(64)
        ranges = b.alloc_pages(13)
        flat = sorted(f for r in ranges for f in range(r.start, r.end))
        assert flat == list(range(flat[0], flat[0] + 13))

    def test_fragmented_fallback(self):
        b = BuddyAllocator(32)
        # Fill memory with pairs, then free alternating pairs: the free
        # space is eight 2-frame holes, so 8 pages cannot be one block.
        pins = [b.alloc_order(1) for _ in range(16)]
        for pin in pins[::2]:
            b.free(pin)
        ranges = b.alloc_pages(8)
        assert sum(r.count for r in ranges) == 8
        assert len(ranges) > 1
        b.check_invariants()

    def test_oom_rolls_back(self):
        b = BuddyAllocator(16)
        b.alloc_order(3)
        before = b.free_frames
        with pytest.raises(OutOfMemoryError):
            b.alloc_pages(12)
        assert b.free_frames == before
        b.check_invariants()

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            BuddyAllocator(16).alloc_pages(0)


class TestExactRun:
    def test_basic(self):
        b = BuddyAllocator(64)
        run = b.alloc_exact_run(12)
        assert run is not None and run.count == 12
        b.check_invariants()

    def test_free_run_roundtrip(self):
        b = BuddyAllocator(64)
        run = b.alloc_exact_run(12)
        b.free_run(run)
        assert b.free_frames == 64
        assert b.largest_free_order() == 6

    def test_too_large_returns_none(self):
        b = BuddyAllocator(16)
        assert b.alloc_exact_run(32) is None

    def test_unavailable_returns_none(self):
        b = BuddyAllocator(16)
        b.alloc_order(4)
        assert b.alloc_exact_run(3) is None


class TestFragmentation:
    def test_fragment_reduces_largest_order(self):
        rng = make_rng(3)
        b = BuddyAllocator(1 << 12)
        held = b.fragment(rng, 0.5, (0, 3))
        assert held  # background blocks survive
        assert b.largest_free_order() < 12
        b.check_invariants()

    def test_fragment_zero_is_noop(self):
        b = BuddyAllocator(256)
        assert b.fragment(make_rng(1), 0.0) == []
        assert b.free_frames == 256

    def test_fragment_validation(self):
        with pytest.raises(ValueError):
            BuddyAllocator(256).fragment(make_rng(1), 1.5)


@st.composite
def alloc_free_script(draw):
    """A random interleaving of allocations and frees."""
    return draw(st.lists(st.tuples(st.booleans(), st.integers(0, 4)),
                         min_size=1, max_size=60))


class TestBuddyProperties:
    @given(alloc_free_script())
    @settings(max_examples=60, deadline=None)
    def test_invariants_under_random_script(self, script):
        b = BuddyAllocator(1 << 10)
        live = []
        for is_alloc, order in script:
            if is_alloc or not live:
                try:
                    live.append(b.alloc_order(order))
                except OutOfMemoryError:
                    pass
            else:
                b.free(live.pop(order % len(live)))
        b.check_invariants()
        assert b.free_frames + b.allocated_frames == 1 << 10

    @given(alloc_free_script())
    @settings(max_examples=40, deadline=None)
    def test_free_all_restores_max_order(self, script):
        b = BuddyAllocator(1 << 10)
        live = []
        for is_alloc, order in script:
            if is_alloc or not live:
                try:
                    live.append(b.alloc_order(order))
                except OutOfMemoryError:
                    pass
            else:
                b.free(live.pop(order % len(live)))
        for block in live:
            b.free(block)
        assert b.free_frames == 1 << 10
        assert b.largest_free_order() == 10

    @given(st.lists(st.integers(1, 40), min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_alloc_pages_counts(self, requests):
        b = BuddyAllocator(1 << 10)
        total = 0
        for count in requests:
            if total + count > 1 << 10:
                break
            got = b.alloc_pages(count)
            assert sum(r.count for r in got) == count
            total += count
        b.check_invariants()
