"""The O(1) allocated/free frame counters stay in lock step.

``BuddyAllocator.free_frames``/``allocated_frames`` are now running
counters rather than sums over the block tables; every bookkeeping
path — splits, coalescing, trims, targeted reservation, consolidation,
isolation, migration-style single-frame frees — must keep them equal to
what re-summing would produce (``check_invariants`` asserts exactly
that, so these tests churn and call it).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import OutOfMemoryError
from repro.mem.buddy import BuddyAllocator
from repro.mem.frames import FrameRange


def assert_counters(buddy):
    buddy.check_invariants()  # includes the counter-vs-table check
    assert buddy.allocated_frames == sum(
        block.count for block in buddy.allocated_blocks())
    assert buddy.free_frames + buddy.allocated_frames == buddy.total_frames


class TestCounters:
    def test_fresh_allocator(self):
        buddy = BuddyAllocator(256)
        assert buddy.allocated_frames == 0
        assert buddy.free_frames == 256
        assert_counters(buddy)

    def test_alloc_and_free_order(self):
        buddy = BuddyAllocator(256)
        block = buddy.alloc_order(3)
        assert buddy.allocated_frames == 8
        assert buddy.free_frames == 248
        assert_counters(buddy)
        buddy.free(block)
        assert buddy.allocated_frames == 0
        assert_counters(buddy)

    def test_alloc_pages_with_trim(self):
        buddy = BuddyAllocator(256)
        ranges = buddy.alloc_pages(37)  # not a power of two: trims
        assert sum(r.count for r in ranges) == 37
        assert buddy.allocated_frames == 37
        assert_counters(buddy)

    def test_alloc_exact_run_and_free_run(self):
        buddy = BuddyAllocator(256)
        run = buddy.alloc_exact_run(21)
        assert run is not None and run.count == 21
        assert buddy.allocated_frames == 21
        assert_counters(buddy)
        buddy.free_run(run)
        assert buddy.allocated_frames == 0
        assert_counters(buddy)

    def test_reserve_free_in_range(self):
        buddy = BuddyAllocator(256)
        claimed = buddy.reserve_free_in_range(10, 53)
        assert sum(r.count for r in claimed) == 43
        assert buddy.allocated_frames == 43
        assert_counters(buddy)

    def test_consolidate_is_net_zero(self):
        buddy = BuddyAllocator(64)
        for _ in range(4):
            buddy.alloc_order(0)
        before = buddy.allocated_frames
        buddy.consolidate(0, 2)
        assert buddy.allocated_frames == before
        assert_counters(buddy)

    def test_isolate_and_free_frame(self):
        buddy = BuddyAllocator(64)
        block = buddy.alloc_order(3)
        buddy.isolate_frame(block.start + 2)
        assert buddy.allocated_frames == 8  # isolation moves no frames
        assert_counters(buddy)
        buddy.free_frame(block.start + 2)
        assert buddy.allocated_frames == 7
        assert_counters(buddy)

    def test_failed_alloc_pages_rolls_back(self):
        buddy = BuddyAllocator(16)
        buddy.alloc_pages(12)
        held = buddy.allocated_frames
        with pytest.raises(OutOfMemoryError):
            buddy.alloc_pages(8)
        assert buddy.allocated_frames == held
        assert_counters(buddy)

    def test_fragmentation_churn(self):
        rng = np.random.default_rng(17)
        buddy = BuddyAllocator(1024)
        held = buddy.fragment(rng, 0.4)
        assert buddy.allocated_frames == sum(b.count for b in held)
        assert_counters(buddy)
        for block in held[::2]:
            buddy.free(block)
        assert_counters(buddy)

    def test_random_mixed_churn(self):
        rng = np.random.default_rng(23)
        buddy = BuddyAllocator(512)
        live: list[FrameRange] = []
        for step in range(200):
            if live and rng.random() < 0.45:
                buddy.free(live.pop(int(rng.integers(len(live)))))
            else:
                try:
                    live.extend(buddy.alloc_pages(int(rng.integers(1, 20))))
                except OutOfMemoryError:
                    while live:
                        buddy.free(live.pop())
            if step % 20 == 0:
                assert_counters(buddy)
        assert_counters(buddy)
