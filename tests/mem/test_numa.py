"""Tests for the NUMA topology substrate."""

import pytest

from repro.errors import OutOfMemoryError
from repro.mem.numa import NumaTopology


class TestTopology:
    def test_requires_nodes(self):
        with pytest.raises(ValueError):
            NumaTopology([])

    def test_two_tier_defaults(self):
        topo = NumaTopology.two_tier()
        assert len(topo.nodes) == 2
        assert topo.nodes[0].latency_cycles < topo.nodes[1].latency_cycles

    def test_global_frame_space_is_partitioned(self):
        topo = NumaTopology([(256, 10), (256, 20)])
        assert topo.total_frames == 512
        assert topo.nodes[1].base_frame == 256

    def test_node_of_and_latency(self):
        topo = NumaTopology([(256, 10), (256, 20)])
        assert topo.node_of(0).node_id == 0
        assert topo.node_of(300).node_id == 1
        assert topo.latency_of(300) == 20
        with pytest.raises(ValueError):
            topo.node_of(512)

    def test_alloc_on_node_returns_global_frames(self):
        topo = NumaTopology([(256, 10), (256, 20)])
        block = topo.alloc_on(1, 3)
        assert block.start >= 256
        assert topo.node_of(block.start).node_id == 1

    def test_alloc_free_roundtrip(self):
        topo = NumaTopology([(64, 10), (64, 20)])
        block = topo.alloc_on(1, 2)
        topo.nodes[1].free(block)
        assert topo.nodes[1].allocator.free_frames == 64

    def test_alloc_preferring_spills(self):
        topo = NumaTopology([(16, 10), (64, 20)])
        topo.alloc_on(0, 4)  # exhaust node 0
        block = topo.alloc_preferring(0, 2)
        assert topo.node_of(block.start).node_id == 1

    def test_alloc_preferring_exhausted_everywhere(self):
        topo = NumaTopology([(16, 10)])
        topo.alloc_on(0, 4)
        with pytest.raises(OutOfMemoryError):
            topo.alloc_preferring(0, 0)
