"""Tests for the PhysicalMemory facade and fragmentation profiles."""

import pytest

from repro.mem.physmem import PROFILES, FragmentationProfile, PhysicalMemory
from repro.util.rng import make_rng


class TestProfiles:
    def test_known_profiles(self):
        assert set(PROFILES) == {
            "pristine", "light", "moderate", "heavy", "severe"
        }
        assert PROFILES["pristine"].hold_fraction == 0.0

    def test_profiles_ordered_by_pressure(self):
        assert (
            PROFILES["light"].hold_fraction
            < PROFILES["moderate"].hold_fraction
            < PROFILES["heavy"].hold_fraction
            < PROFILES["severe"].hold_fraction
        )


class TestPhysicalMemory:
    def test_pristine_has_everything_free(self):
        memory = PhysicalMemory(1 << 12, "pristine")
        assert memory.free_frames == 1 << 12
        assert memory.background_frames == 0

    def test_profile_by_name_or_object(self):
        a = PhysicalMemory(1 << 12, "light", seed=1)
        b = PhysicalMemory(1 << 12, PROFILES["light"], seed=1)
        assert a.free_frames == b.free_frames

    def test_fragmentation_holds_memory(self):
        memory = PhysicalMemory(1 << 12, "moderate", seed=2)
        assert memory.background_frames > 0
        assert memory.free_frames < 1 << 12
        memory.buddy.check_invariants()

    def test_heavier_profile_lowers_max_order(self):
        light = PhysicalMemory(1 << 14, "light", seed=5)
        heavy = PhysicalMemory(1 << 14, "heavy", seed=5)
        assert (heavy.buddy.largest_free_order() or 0) <= (
            light.buddy.largest_free_order() or 0
        )

    def test_deterministic_in_seed(self):
        a = PhysicalMemory(1 << 12, "moderate", seed=9)
        b = PhysicalMemory(1 << 12, "moderate", seed=9)
        assert a.contiguity_signature() == b.contiguity_signature()

    def test_release_background(self):
        memory = PhysicalMemory(1 << 12, "heavy", seed=4)
        held = memory.background_frames
        memory.release_background(0.5, make_rng(1))
        assert memory.background_frames < held
        memory.buddy.check_invariants()

    def test_release_background_validation(self):
        memory = PhysicalMemory(1 << 12, "light", seed=1)
        with pytest.raises(ValueError):
            memory.release_background(1.5, make_rng(0))

    def test_custom_profile(self):
        profile = FragmentationProfile("mine", 0.2, (1, 2))
        memory = PhysicalMemory(1 << 12, profile, seed=1)
        assert memory.profile.name == "mine"
        assert memory.background_frames > 0
