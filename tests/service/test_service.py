"""End-to-end tests for the simulation service (repro.service).

Each test boots a real :class:`SimService` on an ephemeral port via
:class:`ServiceThread` and talks to it with the blocking client — the
same code path as ``anchor-tlb serve`` / ``anchor-tlb submit``.
"""

from __future__ import annotations

import concurrent.futures
import time

import pytest

from repro.service import ServiceThread, status, submit, submit_and_wait
from repro.sim.api import (
    SimRequest,
    TenancyConfig,
    execute_request,
    simulate_request,
)


def request_of(**overrides) -> SimRequest:
    defaults = dict(
        workload="gups", scenario="medium", scheme="base",
        references=10_000, seed=7,
    )
    defaults.update(overrides)
    return SimRequest(**defaults)


class TestBurstAndDedup:
    def test_three_request_burst_with_duplicate(self):
        """ISSUE acceptance: a duplicate request is served from cache
        without re-simulation, and the service drains cleanly."""
        first = request_of()
        other = request_of(scheme="thp")
        with ServiceThread(queue_limit=4) as service_thread:
            host, port = service_thread.host, service_thread.port
            reply_a, envelopes_a = submit_and_wait(first, host, port)
            reply_b, _ = submit_and_wait(other, host, port)
            reply_dup, envelopes_dup = submit_and_wait(first, host, port)
            metrics = status(host, port)["metrics"]

        assert metrics["received"] == 3
        assert metrics["computed"] == 2       # the duplicate never ran
        assert metrics["cache_hits"] == 1
        assert metrics["errors"] == 0
        assert reply_a.key != reply_b.key
        # The reply is byte-identical however it was resolved...
        assert reply_dup == reply_a
        # ...while the transport envelope records the resolution path.
        assert envelopes_a[-1]["cached"] is False
        assert envelopes_dup[-1]["cached"] is True

    def test_concurrent_duplicates_join_inflight(self):
        request = request_of(references=30_000)
        with ServiceThread(queue_limit=4) as service_thread:
            host, port = service_thread.host, service_thread.port
            with concurrent.futures.ThreadPoolExecutor(3) as pool:
                replies = [
                    future.result()[0]
                    for future in [
                        pool.submit(submit_and_wait, request, host, port)
                        for _ in range(3)
                    ]
                ]
            metrics = status(host, port)["metrics"]
        assert metrics["computed"] == 1
        assert metrics["cache_hits"] + metrics["joined_inflight"] == 2
        assert replies[0] == replies[1] == replies[2]

    def test_envelope_stream_shape(self):
        request = request_of(references=8_000, epoch_references=2_000)
        with ServiceThread() as service_thread:
            events = [
                envelope["event"]
                for envelope in submit(
                    request, service_thread.host, service_thread.port
                )
            ]
        assert events[0] == "accepted"
        assert events[-1] == "result"
        assert events.count("epoch") == 4

    def test_epoch_replay_identical_for_cached_requests(self):
        """Every client of a key sees the same epoch stream, whether
        the result was computed for it or replayed from the cache."""
        request = request_of(references=9_000, epoch_references=3_000)
        with ServiceThread() as service_thread:
            host, port = service_thread.host, service_thread.port
            _, first = submit_and_wait(request, host, port)
            _, second = submit_and_wait(request, host, port)
        epochs_first = [e for e in first if e["event"] == "epoch"]
        epochs_second = [e for e in second if e["event"] == "epoch"]
        assert epochs_first == epochs_second
        assert len(epochs_first) == 3


class TestByteIdentity:
    def test_service_reply_identical_to_direct_execution(self):
        """ISSUE acceptance: workers=0 in-process execution and a
        service-submitted request produce byte-identical replies for
        the same key."""
        request = request_of(references=15_000)
        direct = simulate_request(request)
        with ServiceThread(workers=0) as service_thread:
            served, _ = submit_and_wait(
                request, service_thread.host, service_thread.port
            )
        assert served.key == direct.key == request.key()
        assert served.payload == direct.payload

    def test_fleet_request_through_service(self):
        request = request_of(
            references=800, kind="fleet",
            tenancy=TenancyConfig(tenants=4, quantum=200, active_pool=2),
        )
        direct = execute_request(request)
        with ServiceThread() as service_thread:
            served, _ = submit_and_wait(
                request, service_thread.host, service_thread.port
            )
        assert served.payload["tenants"] == 4
        # FleetResult.to_dict carries no process-dependent fields, so
        # the served payload equals the in-process one byte for byte.
        assert served.payload == direct

    def test_sharded_parallel_fleet_through_service(self):
        """A workers>0 fleet runs its own shard pool from the service
        parent and still returns the workers=0 bytes — and both worker
        counts hash to the same key (one cache entry)."""
        tenancy = TenancyConfig(tenants=6, quantum=200, active_pool=2,
                                shards=3, workers=2)
        request = request_of(references=800, kind="fleet", tenancy=tenancy)
        serial = request_of(
            references=800, kind="fleet",
            tenancy=TenancyConfig(tenants=6, quantum=200, active_pool=2,
                                  shards=3, workers=0),
        )
        assert request.key() == serial.key()
        direct = execute_request(serial)
        with ServiceThread() as service_thread:
            served, _ = submit_and_wait(
                request, service_thread.host, service_thread.port
            )
        assert served.payload == direct
        assert served.payload["shards"] == 3


class TestPersistentCache:
    def test_results_survive_service_restart(self, tmp_path):
        request = request_of(references=12_000)
        with ServiceThread(cache_dir=tmp_path) as service_thread:
            reply_first, _ = submit_and_wait(
                request, service_thread.host, service_thread.port
            )
        with ServiceThread(cache_dir=tmp_path) as service_thread:
            reply_second, envelopes = submit_and_wait(
                request, service_thread.host, service_thread.port
            )
            metrics = status(
                service_thread.host, service_thread.port
            )["metrics"]
        assert reply_second == reply_first
        assert envelopes[-1]["cached"] is True
        assert metrics["computed"] == 0


class TestFailureHandling:
    def test_bad_request_yields_error_envelope(self):
        request = request_of(workload="no-such-workload")
        with ServiceThread() as service_thread:
            envelopes = list(submit(
                request, service_thread.host, service_thread.port
            ))
            metrics = status(
                service_thread.host, service_thread.port
            )["metrics"]
        assert envelopes[-1]["event"] == "error"
        assert "no-such-workload" in envelopes[-1]["error"]
        assert metrics["errors"] == 1

    def test_error_does_not_poison_cache(self):
        bad = request_of(workload="no-such-workload")
        good = request_of()
        with ServiceThread() as service_thread:
            host, port = service_thread.host, service_thread.port
            assert list(submit(bad, host, port))[-1]["event"] == "error"
            # The same bad key errors again (not served from cache)...
            assert list(submit(bad, host, port))[-1]["event"] == "error"
            # ...and good requests still work.
            reply, _ = submit_and_wait(good, host, port)
        assert reply.payload["stats"]["accesses"] == 10_000

    def test_submit_and_wait_raises_on_error(self):
        with ServiceThread() as service_thread:
            with pytest.raises(RuntimeError):
                submit_and_wait(
                    request_of(workload="no-such-workload"),
                    service_thread.host,
                    service_thread.port,
                )


class TestBackpressure:
    def test_overflow_rejected_not_queued(self):
        """With one admission slot and a tiny timeout, a second distinct
        in-flight request is rejected with backpressure, not queued
        without bound."""
        slow = request_of(references=200_000)
        other = request_of(references=200_000, scheme="thp")
        with ServiceThread(queue_limit=1, queue_timeout=0.05) as service_thread:
            host, port = service_thread.host, service_thread.port
            with concurrent.futures.ThreadPoolExecutor(2) as pool:
                slow_future = pool.submit(submit_and_wait, slow, host, port)
                # Wait until the slow job is registered in-flight (and so
                # holds the only admission slot) before offering the
                # competitor, else the competitor can win the slot and
                # the slow job itself gets the rejection.
                while (status(host, port)["inflight"] == 0
                       and not slow_future.done()):
                    time.sleep(0.01)
                outcomes = []
                # Retry until the slow job actually occupies the slot.
                while not slow_future.done():
                    envelopes = list(submit(other, host, port))
                    outcomes.append(envelopes[-1])
                    if envelopes[-1]["event"] == "rejected":
                        break
                slow_future.result()
            metrics = status(host, port)["metrics"]
        rejected = [o for o in outcomes if o["event"] == "rejected"]
        if rejected:  # the race is real: only assert when it was hit
            assert rejected[-1]["reason"] == "backpressure"
            assert metrics["rejected"] >= 1


class TestCliEntryPoints:
    def test_serve_and_submit_reachable_from_cli(self):
        """'anchor-tlb serve' / 'anchor-tlb submit' dispatch before the
        experiment argument parser."""
        import repro.experiments.cli as cli

        with pytest.raises(SystemExit) as excinfo:
            cli.main(["serve", "--help"])
        assert excinfo.value.code == 0
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["submit", "--help"])
        assert excinfo.value.code == 0

    def test_submit_main_against_live_service(self, capsys):
        import json

        from repro.service.client import submit_main

        with ServiceThread() as service_thread:
            code = submit_main([
                "--port", str(service_thread.port),
                "--workload", "gups", "--scenario", "low",
                "--scheme", "base", "--references", "5000", "--seed", "1",
            ])
            assert code == 0
            envelopes = [
                json.loads(line)
                for line in capsys.readouterr().out.splitlines()
            ]
            assert envelopes[-1]["event"] == "result"

            code = submit_main([
                "--port", str(service_thread.port), "--op", "status",
            ])
            assert code == 0
            metrics = json.loads(capsys.readouterr().out)["metrics"]
            assert metrics["computed"] == 1


class TestClientRetries:
    def test_connect_retries_until_server_appears(self, monkeypatch):
        """The first connects are refused (cold server); the backoff
        loop keeps trying and succeeds once the socket exists."""
        from repro.service import client as client_mod

        real_connect = client_mod.socket.create_connection
        failures = {"left": 2}
        attempts = []

        def flaky(address, timeout=None):
            attempts.append(address)
            if failures["left"] > 0:
                failures["left"] -= 1
                raise ConnectionRefusedError("cold server")
            return real_connect(address, timeout=timeout)

        with ServiceThread() as service_thread:
            # Patch after startup so the thread's own readiness probe
            # does not consume the scripted failures.
            monkeypatch.setattr(client_mod.socket, "create_connection",
                                flaky)
            snapshot = client_mod.status(
                service_thread.host, service_thread.port,
                retries=5, retry_delay=0.01,
            )
            status_attempts = len(attempts)
        assert snapshot["event"] == "status"
        assert failures["left"] == 0
        assert status_attempts == 3  # two refusals + one success

    def test_retries_exhausted_raises(self, monkeypatch):
        from repro.service import client as client_mod

        calls = []

        def always_refused(address, timeout=None):
            calls.append(address)
            raise ConnectionRefusedError("nobody home")

        monkeypatch.setattr(client_mod.socket, "create_connection",
                            always_refused)
        with pytest.raises(OSError):
            client_mod.status("127.0.0.1", 1, retries=3, retry_delay=0.001)
        assert len(calls) == 4  # first attempt + three retries

    def test_no_retries_by_default(self, monkeypatch):
        from repro.service import client as client_mod

        calls = []

        def always_refused(address, timeout=None):
            calls.append(address)
            raise ConnectionRefusedError("nobody home")

        monkeypatch.setattr(client_mod.socket, "create_connection",
                            always_refused)
        with pytest.raises(OSError):
            client_mod.status("127.0.0.1", 1)
        assert len(calls) == 1
