"""Guard rails: the documentation's claims stay true of the code.

DESIGN.md and docs/paper_mapping.md name modules, schemes and
experiments; these tests fail if a rename or removal silently breaks
the documented inventory.
"""

import importlib
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]


def referenced_modules(text: str) -> set[str]:
    """Backtick-quoted repro.* dotted names in a markdown document."""
    names = set()
    for match in re.findall(r"`(repro(?:\.\w+)+)`", text):
        # Strip attribute-looking tails conservatively: try the full
        # dotted path first, then its parent.
        names.add(match)
    return names


class TestDesignInventory:
    def test_every_referenced_module_imports(self):
        text = (ROOT / "DESIGN.md").read_text()
        missing = []
        for name in sorted(referenced_modules(text)):
            try:
                importlib.import_module(name)
            except ImportError:
                # Could be module.attribute; try the parent module.
                parent = name.rsplit(".", 1)[0]
                try:
                    module = importlib.import_module(parent)
                    if not hasattr(module, name.rsplit(".", 1)[1]):
                        missing.append(name)
                except ImportError:
                    missing.append(name)
        assert not missing, missing

    def test_every_bench_file_named_in_design_exists(self):
        text = (ROOT / "DESIGN.md").read_text()
        for path in re.findall(r"`(benchmarks/[\w./]+\.py)`", text):
            assert (ROOT / path).exists(), path

    def test_every_experiment_driver_named_in_design_exists(self):
        text = (ROOT / "DESIGN.md").read_text()
        for path in re.findall(r"`(experiments/[\w./]+\.py)`", text):
            assert (ROOT / "src" / "repro" / path).exists(), path


class TestPaperMapping:
    def test_every_referenced_test_file_exists(self):
        text = (ROOT / "docs" / "paper_mapping.md").read_text()
        for path in set(re.findall(r"`(tests/[\w./]+\.py)`", text)):
            assert (ROOT / path).exists(), path

    def test_every_referenced_example_exists(self):
        text = (ROOT / "docs" / "paper_mapping.md").read_text()
        for path in set(re.findall(r"`(examples/[\w./]+\.py)`", text)):
            assert (ROOT / path).exists(), path


class TestReadme:
    def test_examples_listed_exist(self):
        text = (ROOT / "README.md").read_text()
        for path in set(re.findall(r"python (examples/\w+\.py)", text)):
            assert (ROOT / path).exists(), path

    def test_scheme_names_listed_are_real(self):
        from repro.schemes.registry import scheme_names

        names = scheme_names(include_extras=True)
        for required in ("base", "thp", "cluster2mb", "rmm", "anchor-dyn"):
            assert required in names
