#!/usr/bin/env python3
"""Quickstart: compare translation schemes on one workload.

Builds the ``gups`` workload (one giant randomly-accessed table), maps
it under the medium-contiguity scenario of the paper (chunks of
4 KB - 2 MB), and replays the same memory trace through every
translation scheme, printing TLB misses relative to the 4 KiB baseline.

Run:  python examples/quickstart.py [references]
"""

import sys

from repro import build_mapping, get_workload, make_scheme, scheme_names, run_trace
from repro.util.tables import format_table


def main() -> None:
    references = int(sys.argv[1]) if len(sys.argv) > 1 else 50_000
    workload = get_workload("gups")
    print(f"workload: {workload.name} — {workload.description}")
    print(f"footprint: {workload.footprint_pages} pages "
          f"({workload.footprint_pages * 4 // 1024} MiB)")

    # 1. The OS side: build a virtual-to-physical mapping for the
    #    workload's regions under a chosen contiguity scenario.
    mapping = build_mapping(workload.vmas(), "medium", seed=42)

    # 2. The workload side: generate a memory reference trace.
    trace = workload.make_trace(references, seed=42)
    print(f"trace: {trace.references} references, "
          f"{trace.instructions} instructions\n")

    # 3. The hardware side: run every scheme over the same trace.
    rows = []
    baseline_walks = None
    for name in scheme_names():
        result = run_trace(make_scheme(name, mapping), trace)
        if baseline_walks is None:
            baseline_walks = result.stats.walks
        rows.append([
            name,
            result.stats.walks,
            100.0 * result.stats.walks / baseline_walks,
            result.translation_cpi,
            result.anchor_distance or "-",
        ])
    print(format_table(
        ["scheme", "L2 misses", "relative %", "translation CPI", "anchor d"],
        rows,
        precision=2,
        title="gups / medium contiguity",
    ))
    print("\nThe anchor scheme picks its distance with Algorithm 1 and")
    print("serves whole contiguity windows from single L2 entries.")


if __name__ == "__main__":
    main()
