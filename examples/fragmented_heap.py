#!/usr/bin/env python3
"""A fragmented small-object heap: where huge pages fail and anchors win.

This is the scenario that motivates the paper's abstract: an application
(omnetpp-style) whose heap consists of many small allocations on a
machine whose physical memory has been shattered by long-running
co-runners.  THP finds nothing to promote, RMM's 32 ranges thrash, but
the anchor scheme adapts its distance to whatever contiguity is left.

The script walks through the OS mechanics explicitly:

1. fragment physical memory with background jobs,
2. demand-page the workload in and inspect the contiguity histogram,
3. run Algorithm 1 by hand and show the per-distance cost table,
4. simulate, and show the L2 breakdown (Table 5 style).

Run:  python examples/fragmented_heap.py
"""

from repro import get_workload, make_scheme, run_trace
from repro.mem.physmem import PhysicalMemory
from repro.util.rng import spawn_rng
from repro.util.tables import format_table
from repro.vmos.contiguity import contiguity_histogram, mean_chunk_pages
from repro.vmos.distance import cost_table, select_distance
from repro.vmos.paging_policy import demand_paging


def main() -> None:
    workload = get_workload("omnetpp")

    # -- 1. a machine under memory pressure -----------------------------
    memory = PhysicalMemory(
        total_frames=1 << 15, profile="heavy", seed=7
    )
    print(f"machine: {memory.total_frames} frames, "
          f"{memory.background_frames} pinned by background jobs")
    print(f"free-block signature (order -> count): "
          f"{memory.contiguity_signature()}\n")

    # -- 2. demand-page the workload in ----------------------------------
    rng = spawn_rng(7, "example", "fragmented-heap")
    mapping = demand_paging(workload.vmas(), memory, rng,
                            thp=True, interleave=0.3)
    histogram = contiguity_histogram(mapping)
    print(f"mapping: {mapping.mapped_pages} pages in "
          f"{histogram.total_items} chunks "
          f"(mean {mean_chunk_pages(mapping):.1f} pages/chunk)\n")

    # -- 3. Algorithm 1 by hand ------------------------------------------
    costs = cost_table(histogram)
    interesting = [d for d in sorted(costs) if d <= 256]
    print(format_table(
        ["anchor distance", "estimated TLB entries"],
        [[d, costs[d]] for d in interesting],
        precision=0,
        title="Algorithm 1 cost table",
    ))
    distance = select_distance(histogram)
    print(f"\nselected anchor distance: {distance} pages\n")

    # -- 4. simulate ------------------------------------------------------
    trace = workload.make_trace(60_000, seed=7)
    rows = []
    for name in ("base", "thp", "cluster2mb", "rmm", "anchor-dyn"):
        result = run_trace(make_scheme(name, mapping), trace)
        regular, coalesced, miss = result.stats.l2_breakdown()
        rows.append([
            name,
            result.stats.walks,
            100 * regular,
            100 * coalesced,
            100 * miss,
        ])
    print(format_table(
        ["scheme", "walks", "L2 R.hit %", "coalesced %", "L2 miss %"],
        rows,
        title="translation behaviour on the fragmented heap",
    ))


if __name__ == "__main__":
    main()
