#!/usr/bin/env python3
"""Fine-grained placement on tiered memory vs translation coverage.

Section 2.2 of the paper argues that emerging tiered memories (stacked
DRAM + NVM, NUMA) force *fine-grained* page placement — hot pages on the
fast node, cold pages on the slow one — which shatters the contiguity
that huge pages and segments need.  This example builds exactly that
tension:

* a **contiguous** placement maps the whole workload onto the far node
  in big chunks (translation-friendly, memory-slow);
* a **fine-grained** placement migrates the hottest pages to the small
  near node page by page (memory-fast, translation-hostile).

It then shows that the anchor scheme keeps most of its translation
coverage even under the fine-grained placement, because the OS lowers
the anchor distance instead of giving up — while THP loses everything.

Run:  python examples/numa_finegrain.py
"""

import numpy as np

from repro import get_workload, make_scheme, run_trace
from repro.mem.numa import NumaTopology
from repro.util.rng import spawn_rng
from repro.util.tables import format_table
from repro.vmos.contiguity import mean_chunk_pages
from repro.vmos.distance import select_distance
from repro.vmos.contiguity import contiguity_histogram
from repro.vmos.mapping import MemoryMapping

HOT_FRACTION = 0.125


def contiguous_placement(workload, topology):
    """Everything on the far node, one big chunk per VMA."""
    mapping = MemoryMapping(vmas=workload.vmas())
    for vma in workload.vmas():
        block = topology.alloc_on(1, (vma.pages - 1).bit_length())
        for i in range(vma.pages):
            mapping.map_page(vma.start_vpn + i, block.start + i)
    return mapping


def fine_grained_placement(workload, topology, trace):
    """Hot pages (by observed access counts) to the near node, 4 KiB at
    a time; the rest stays in far-node chunks."""
    counts: dict[int, int] = {}
    for vpn in trace.vpns.tolist():
        counts[vpn] = counts.get(vpn, 0) + 1
    hot_budget = int(workload.footprint_pages * HOT_FRACTION)
    hot = set(sorted(counts, key=counts.get, reverse=True)[:hot_budget])

    mapping = MemoryMapping(vmas=workload.vmas())
    for vma in workload.vmas():
        far = topology.alloc_on(1, (vma.pages - 1).bit_length())
        for i in range(vma.pages):
            vpn = vma.start_vpn + i
            if vpn in hot:
                near = topology.alloc_on(0, 0)  # one 4 KiB frame
                mapping.map_page(vpn, near.start)
            else:
                mapping.map_page(vpn, far.start + i)
    return mapping


def dram_cycles(mapping, trace, topology):
    """Average raw memory latency of the placement (no TLB)."""
    latencies = [topology.latency_of(mapping.translate(v))
                 for v in trace.vpns[:20_000].tolist()]
    return float(np.mean(latencies))


def main() -> None:
    workload = get_workload("sphinx3")
    trace = workload.make_trace(60_000, seed=11)
    rng = spawn_rng(11, "numa")  # noqa: F841  (placement is deterministic)

    rows = []
    for label, build in (
        ("contiguous/far", contiguous_placement),
        ("fine-grained/hot-near", lambda w, t: fine_grained_placement(w, t, trace)),
    ):
        topology = NumaTopology.two_tier(
            near_frames=1 << 14, far_frames=1 << 17,
            near_latency=80, far_latency=240,
        )
        mapping = build(workload, topology)
        histogram = contiguity_histogram(mapping)
        distance = select_distance(histogram)
        memory_lat = dram_cycles(mapping, trace, topology)
        for scheme_name in ("base", "thp", "anchor-dyn"):
            result = run_trace(make_scheme(scheme_name, mapping), trace)
            rows.append([
                label,
                scheme_name,
                mean_chunk_pages(mapping),
                distance if scheme_name == "anchor-dyn" else "-",
                result.stats.walks,
                result.translation_cpi,
                memory_lat,
            ])

    print(format_table(
        ["placement", "scheme", "mean chunk", "anchor d",
         "L2 misses", "transl. CPI", "mem cycles/access"],
        rows,
        precision=2,
        title="tiered-memory placement vs translation coverage (sphinx3)",
    ))
    print("\nfine-grained placement buys lower memory latency but destroys")
    print("huge-page coverage; the anchor scheme adapts its distance and")
    print("keeps most of the translation win (paper §2.2 motivation).")


if __name__ == "__main__":
    main()
