#!/usr/bin/env python3
"""The full shootout: every scheme on every mapping scenario (mini Fig. 9).

Replays a reduced version of the paper's headline experiment over a
configurable workload subset, printing the mean relative TLB misses per
scenario plus the per-scenario winner — the paper's claim is that the
anchor scheme matches or beats the best prior scheme in every row.

Run:  python examples/scheme_shootout.py [workload ...]
      python examples/scheme_shootout.py gups mcf omnetpp
"""

import sys

from repro.experiments.common import ExperimentConfig, MatrixRunner, figure_schemes
from repro.params import SCENARIO_ORDER
from repro.sim.workloads import WORKLOAD_ORDER
from repro.util.tables import format_table


def main() -> None:
    workloads = tuple(sys.argv[1:]) or ("gups", "milc", "omnetpp", "sphinx3")
    unknown = set(workloads) - set(WORKLOAD_ORDER)
    if unknown:
        raise SystemExit(f"unknown workloads: {sorted(unknown)}; "
                         f"choose from {WORKLOAD_ORDER}")
    schemes = figure_schemes(include_ideal=False)
    runner = MatrixRunner(ExperimentConfig(references=30_000, seed=1))

    rows = []
    for scenario in SCENARIO_ORDER:
        means = {}
        for scheme in schemes:
            values = [
                runner.relative_misses(w, scenario, scheme) for w in workloads
            ]
            means[scheme] = sum(values) / len(values)
        winner = min(means, key=means.get)
        rows.append([scenario] + [means[s] for s in schemes] + [winner])

    print(format_table(
        ["scenario"] + list(schemes) + ["winner"],
        rows,
        title=f"mean relative TLB misses (%) over {', '.join(workloads)}",
    ))
    anchors_won = sum(1 for row in rows if row[-1] == "anchor-dyn")
    print(f"\nanchor-dyn wins {anchors_won}/{len(rows)} scenarios outright;")
    print("ties with the per-scenario specialist elsewhere (paper Fig. 9).")


if __name__ == "__main__":
    main()
