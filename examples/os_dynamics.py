#!/usr/bin/env python3
"""The adaptation loop end to end: fragmentation, compaction, re-anchoring.

The paper's central design argument (§4) is that mappings *change* —
so the anchor distance must be re-selected as the OS compacts memory or
co-runners come and go.  This example plays that movie:

* epoch 1-2: the workload runs on a mapping demand-paged under severe
  memory pressure — tiny chunks, small anchor distance, many walks;
* end of epoch 2: the co-runners exit and khugepaged collapses 2 MiB
  windows (page migration through the buddy system);
* epoch 3+: the dynamic selection notices the new contiguity histogram,
  pays the §3.3 distance-change cost, and translation recovers.

Run:  python examples/os_dynamics.py
"""

from repro.mem.physmem import PhysicalMemory
from repro.schemes.anchor_scheme import AnchorScheme
from repro.sim.engine import run_trace
from repro.util.rng import make_rng, spawn_rng
from repro.util.tables import format_table
from repro.vmos.compaction import compact
from repro.vmos.contiguity import mean_chunk_pages
from repro.vmos.paging_policy import demand_paging
from repro.vmos.vma import AllocationSite, layout_vmas

EPOCH = 20_000
EPOCHS = 6
COMPACT_AFTER_EPOCH = 2


def main() -> None:
    vmas = layout_vmas([AllocationSite(4096, 1), AllocationSite(1024, 2)])
    memory = PhysicalMemory(1 << 14, "severe", seed=5)
    mapping = demand_paging(vmas, memory, make_rng(5), thp=True,
                            faultaround_pages=4)
    print(f"initial mapping: mean chunk {mean_chunk_pages(mapping):.1f} pages "
          f"(severe fragmentation)\n")

    scheme = AnchorScheme(mapping)
    timeline: list[list[object]] = []
    walk_marks = [0]

    def on_epoch(epoch: int, current: AnchorScheme) -> None:
        walk_marks.append(current.stats.walks)
        timeline.append([
            epoch,
            current.distance,
            walk_marks[-1] - walk_marks[-2],
            f"{mean_chunk_pages(current.mapping):.1f}",
        ])
        if epoch == COMPACT_AFTER_EPOCH:
            # Co-runners exit; khugepaged runs.
            memory.release_background(1.0, make_rng(6))
            result = compact(current.mapping, memory)
            current.rebuild(current.mapping)
            timeline.append([
                "--", "--",
                f"khugepaged: {result.windows_collapsed} windows, "
                f"{result.pages_migrated} pages migrated", "",
            ])

    # A simple random workload over the footprint.
    import numpy as np

    from repro.sim.trace import Trace

    rng = spawn_rng(5, "os-dynamics")
    vpns = np.array([vpn for vpn, _ in mapping.items()], dtype=np.int64)
    picks = vpns[rng.integers(0, len(vpns), EPOCH * EPOCHS)]
    trace = Trace(picks, EPOCH * EPOCHS * 3, "dynamics")

    result = run_trace(scheme, trace, epoch_references=EPOCH, on_epoch=on_epoch)
    walk_marks.append(result.stats.walks)
    timeline.append([
        EPOCHS, scheme.distance, walk_marks[-1] - walk_marks[-2],
        f"{mean_chunk_pages(scheme.mapping):.1f}",
    ])

    print(format_table(
        ["epoch", "anchor distance", "walks this epoch", "mean chunk"],
        timeline,
        title="adaptation timeline",
    ))
    print(f"\ndistance changes paid: {result.distance_changes} "
          f"({scheme.shootdowns.total_distance_change_ms:.2f} ms modelled)")
    print("the dynamic selection re-anchors once the mapping improves,")
    print("and the post-compaction epochs walk far less (paper §4).")


if __name__ == "__main__":
    main()
